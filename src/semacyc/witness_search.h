#ifndef SEMACYC_SEMACYC_WITNESS_SEARCH_H_
#define SEMACYC_SEMACYC_WITNESS_SEARCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "acyclic/classify.h"
#include "chase/query_chase.h"
#include "core/incremental_hom.h"
#include "core/worksteal.h"
#include "deps/classify.h"
#include "rewrite/ucq_rewriter.h"

namespace semacyc {

/// Σ-only facts shared by every per-query containment oracle and by the
/// small-query-bound computation for a fixed schema — the analyze-once
/// payload of semacyc::Engine's prepared schema. The free-function
/// entrypoints recompute them per call (via the oracle's legacy
/// constructor); an Engine computes them once and hands them to every
/// oracle it builds.
struct SchemaFacts {
  /// Chase-based containment answers are exact: Σ is egd-only, or a
  /// weakly acyclic tgd-only set (chase termination is guaranteed).
  bool chase_exact = false;
  /// Σ lies in a class whose UCQ rewriting is worth building when the
  /// chase may diverge (linear / non-recursive / sticky).
  bool rewritable = false;
  /// Small-query-bound facts (Props 8/15/22): guarded tgds, NR-or-sticky
  /// tgds (bound via PaperRewriteHeightBound), bounded egd classes
  /// (K2 / unary FDs).
  bool guarded = false;
  bool nr_or_sticky = false;
  bool egds_bounded = false;
  /// Body←head predicate edges of Σ's tgds (the reachability prefilter
  /// walks them backwards from q's predicates) and the set of tgd head
  /// predicates (the chase-free degeneration tests against it).
  std::unordered_map<uint32_t, std::vector<uint32_t>> reverse_pred_edges;
  std::unordered_set<uint32_t> tgd_head_preds;

  static SchemaFacts Compute(const DependencySet& sigma);
  /// Same facts from an already-computed tgd classification (the Engine
  /// classifies Σ once and reuses it here).
  static SchemaFacts Compute(const DependencySet& sigma,
                             const TgdClassification& tgd_classes);
};

/// Oracle answering "candidate ⊆Σ q" for a fixed (q, Σ). When Σ is
/// tgd-only and the UCQ rewriting of q is complete, candidates are checked
/// against the cached rewriting (exact, no chase of the candidate needed);
/// otherwise the candidate is chased (exact when that chase saturates).
///
/// With `memoize = true` (the default) the per-candidate work is cut two
/// ways:
///  * answers are memoized by the hash-interned canonical form of the
///    candidate (collisions resolved with AreIsomorphic, so the cache is
///    exact): isomorphic candidates revisited across witness strategies,
///    head patterns and iterative-deepening rounds hit the cache instead
///    of re-chasing;
///  * for egd-free Σ, a predicate-reachability prefilter answers kNo
///    without chasing when some predicate of q is unreachable (at the
///    predicate level, an over-approximation of derivability) from the
///    candidate's predicates — no chase of the candidate, however long,
///    can then produce the atoms q needs, so the rejection is definitive;
///  * when Σ is egd-free and no tgd head predicate occurs in q, the chase
///    of the candidate can never add an atom the q-homomorphism could
///    use, so containment degenerates to the classical Chandra–Merlin
///    check against the candidate itself — exact, chase-free, and cheap
///    enough that memoizing it would cost more than deciding.
/// `memoize = false` reproduces the pre-PR per-candidate cost and is the
/// bench baseline.
class ContainmentOracle {
 public:
  ContainmentOracle(const ConjunctiveQuery& q, const DependencySet& sigma,
                    const ChaseOptions& chase_options,
                    const RewriteOptions& rewrite_options,
                    bool try_rewriting = true, bool memoize = true);

  /// Prepared-schema constructor (Engine path): `facts` carries the Σ-only
  /// analysis (consumed during construction, not stored), `rewrite_cache`
  /// (may be null) shares UCQ rewritings across oracles for the same q,
  /// and `synchronized = true` makes ContainedInQ safe to call from
  /// concurrent threads (the prefilter and chase-free paths are
  /// lock-free over immutable compiled state; only the memo takes a
  /// lock per answer).
  ContainmentOracle(const ConjunctiveQuery& q, const DependencySet& sigma,
                    const ChaseOptions& chase_options,
                    const RewriteOptions& rewrite_options,
                    const SchemaFacts& facts, RewriteCache* rewrite_cache,
                    bool try_rewriting = true, bool memoize = true,
                    bool synchronized = false);

  /// candidate ⊆Σ q. `cancel` (nullptr = not cancellable) is polled per
  /// check and threaded into the candidate's chase; once the token has
  /// triggered the answer is kUnknown and is NOT memoized — a later
  /// uncancelled call recomputes it exactly.
  Tri ContainedInQ(const ConjunctiveQuery& candidate,
                   CancelToken* cancel = nullptr) const;
  /// True when kNo answers are exact.
  bool exact() const { return exact_; }
  /// Whether the cached-rewriting fast path is active.
  bool uses_rewriting() const { return rewriting_ != nullptr; }
  /// The cached rewriting itself (null when inactive) — observability:
  /// its build_ns attributes REWRITE cost inside oracle construction.
  const std::shared_ptr<const RewriteResult>& rewriting() const {
    return rewriting_;
  }
  /// Approximate heap bytes of the memo, maintained at each insert. The
  /// honest-accounting hook: the Engine folds this into OracleEntry::
  /// ApproxBytes and re-charges its oracle cache after each decision.
  size_t memo_bytes() const;
  /// Memoization counters (hits are answers served without a chase or
  /// rewriting evaluation; prefiltered counts instant-NO rejections).
  /// Synchronized oracles read them under the same lock as ContainedInQ.
  size_t cache_hits() const;
  size_t cache_misses() const;
  size_t prefiltered() const;

 private:
  /// The memoized slow path (cache lookup / chase / insert); takes mu_
  /// itself when synchronized. The lock-free prefix (failpoint, poll,
  /// prefilter, chase-free CM) lives in ContainedInQ.
  Tri ContainedInQMemo(const ConjunctiveQuery& candidate,
                       CancelToken* cancel) const;
  Tri Decide(const ConjunctiveQuery& candidate, CancelToken* cancel) const;
  Tri DecideChaseFree(const ConjunctiveQuery& candidate) const;
  bool PassesPredicateFilter(const ConjunctiveQuery& candidate) const;

  const ConjunctiveQuery& q_;
  const DependencySet& sigma_;
  ChaseOptions chase_options_;
  std::shared_ptr<const RewriteResult> rewriting_;
  bool exact_ = false;
  bool memoize_;
  bool synchronized_ = false;
  mutable std::mutex mu_;
  /// Predicate-reachability prefilter state: for each distinct predicate
  /// of q, the set of predicates from which it is reachable in Σ's
  /// body-to-head predicate graph (ANY-body over-approximation).
  bool prefilter_ = false;
  /// Σ cannot contribute atoms over q's predicates: decide classically.
  bool chase_free_ = false;
  /// Chase-free Chandra–Merlin machinery, compiled once from q at
  /// construction: body variables dense-indexed, atoms pre-ordered
  /// greedily connected (bound-variables-first), positions split into
  /// variable/constant so the per-candidate check is an allocation-free
  /// backtracking over a dense binding array. The compiled form is
  /// immutable after construction; per-check scratch lives in
  /// thread_local buffers (witness_search.cc), so this path — like the
  /// prefilter and the non-memoized Decide — needs no lock even from
  /// concurrent workers. Only the memo takes mu_ (when synchronized).
  struct CmAtom {
    Predicate pred;
    /// Per position: dense variable index, or -1 for a constant.
    std::vector<int> var_at;
    std::vector<Term> const_at;  // valid where var_at[i] < 0
  };
  std::vector<CmAtom> cm_atoms_;
  size_t cm_num_vars_ = 0;
  /// Per head position of q: dense variable index, or -1 (constant).
  std::vector<int> cm_head_var_;
  bool CmDfs(const std::vector<Atom>& target_atoms, size_t depth,
             std::vector<Term>& binding, std::vector<int>& undo) const;
  std::vector<std::unordered_set<uint32_t>> q_pred_sources_;
  mutable std::unordered_map<uint64_t,
                             std::vector<std::pair<ConjunctiveQuery, Tri>>>
      memo_;
  /// Relaxed atomics: exact under the memo lock, monotone race-free
  /// tallies on the lock-free paths (prefilter / chase-free).
  mutable std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> misses_{0};
  mutable std::atomic<size_t> prefiltered_{0};
  mutable std::atomic<size_t> memo_bytes_{0};
};

/// Per-candidate machinery switches for the witness strategies. The
/// default is the full incremental pipeline: push/pop acyclicity
/// classification along the DFS path (with hereditary subtree pruning for
/// β/γ/Berge targets), an incrementally maintained chase homomorphism,
/// and fingerprint-based candidate dedup. Every switch changes cost only,
/// never answers (parity pinned by witness_pipeline_test and
/// incremental_hom_test).
struct WitnessTuning {
  /// Default false (fast pipeline). true reproduces the pre-incremental
  /// seed pipeline — a from-scratch hypergraph build and batch decider run
  /// per candidate, string StructuralKey dedup, a full homomorphism search
  /// per pushed atom — and exists so benches can measure the pipeline at
  /// identical budgets. Never enable in production.
  bool legacy = false;
  /// Default true. The exhaustive enumerator maintains its per-atom chase
  /// homomorphism check incrementally along the DFS path
  /// (core/incremental_hom: candidate domains + forward checking + witness
  /// extension) instead of re-running the full backtracking search on
  /// every pushed atom. Exact — answers, witnesses and budget consumption
  /// are identical either way; set to false only to benchmark the full
  /// re-search. Ignored under `legacy` (legacy always re-searches).
  bool incremental_hom = true;
};

/// Outcome of one witness-search strategy.
struct WitnessSearchOutcome {
  Tri answer = Tri::kUnknown;
  std::optional<ConjunctiveQuery> witness;
  /// True when the strategy exhausted its whole search space (as opposed
  /// to stopping on a budget); needed for kNo claims.
  bool exhausted = false;
  size_t candidates_tested = 0;
  /// Observability counters, filled from the strategy's own bookkeeping
  /// at return (zero-cost: nothing new runs on the search path). `visits`
  /// is DFS nodes visited — the unit the budget is charged in.
  size_t visits = 0;
  size_t classifier_pushes = 0;
  size_t classifier_pops = 0;
  /// Incremental chase-homomorphism session totals (exhaustive strategy
  /// with tuning.incremental_hom only; all-zero otherwise). Under the
  /// parallel strategies these sum over workers — real work performed,
  /// scheduling-dependent, and deliberately outside the parity contract.
  IncrementalHomomorphism::Stats hom;
  /// Work-stealing bookkeeping (parallel strategies only; all-zero on
  /// the sequential paths).
  WorkStealStats parallel;
};

/// Every strategy takes a `target` acyclicity class: candidates are kept
/// only when their hypergraph lies in `target` or a stricter class. kAlpha
/// reproduces the paper's notion; kBeta/kGamma search for witnesses from
/// the stricter strata of the hierarchy (see acyclic/classify.h).
///
/// Every strategy also takes a `cancel` token (nullptr = not cancellable):
/// it is polled per DFS visit and threaded into every per-candidate oracle
/// check. A fired token truncates the search exactly like an exhausted
/// budget — the outcome reports exhausted = false (so no kNo claim can be
/// built on it) with the candidates tested so far as partial evidence. A
/// kYes found before the token fired stays valid: witnesses are verified
/// constructively.

/// Strategy "images": every homomorphic image of q inside the chase whose
/// atom set meets `target` is a candidate (q ⊆Σ image by construction).
WitnessSearchOutcome FindWitnessInQueryImages(
    const ConjunctiveQuery& q, const QueryChaseResult& chase,
    const ContainmentOracle& oracle, size_t max_homs,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha,
    const WitnessTuning& tuning = {}, CancelToken* cancel = nullptr);

/// Strategy "subsets": `target`-acyclic sub-instances of the chase
/// mentioning all answer terms, up to `max_atoms` atoms (q ⊆Σ subset by
/// construction).
WitnessSearchOutcome FindWitnessInChaseSubsets(
    const ConjunctiveQuery& q, const QueryChaseResult& chase,
    const ContainmentOracle& oracle, size_t max_atoms, size_t budget,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha,
    const WitnessTuning& tuning = {}, CancelToken* cancel = nullptr);

/// Strategy "exhaustive": canonical enumeration of `target`-acyclic CQs up
/// to `max_atoms` atoms over the predicates that can occur in chase(q,Σ),
/// pruned by requiring a homomorphism into the chase (this certifies
/// q ⊆Σ candidate). Complete — i.e., a kNo answer is definitive — when
/// (a) the enumeration exhausted (no budget hit), (b) the chase saturated,
/// (c) the oracle is exact, (d) `max_atoms` is at least the paper's
/// small-query bound, and (e) target == kAlpha (the small-query theorems
/// are proven for α-acyclic witnesses only). The caller checks (b)–(e).
WitnessSearchOutcome ExhaustiveWitnessSearch(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const QueryChaseResult& chase, const ContainmentOracle& oracle,
    size_t max_atoms, size_t budget,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha,
    const WitnessTuning& tuning = {}, CancelToken* cancel = nullptr);

/// Work-stealing parallel variants of the two budgeted strategies
/// (core/worksteal.h has the determinism argument; docs/ARCHITECTURE.md
/// the prose). The search space is pre-split into ordered subtree-root
/// units (subsets: per iterative-deepening limit and first chase atom;
/// exhaustive: per head pattern and first/second body atom); `threads`
/// workers each own a replayed IncrementalClassifier +
/// IncrementalHomomorphism session and share a NO-only concurrent
/// fingerprint set, and the ordered commit protocol reproduces the
/// sequential budget semantics exactly — answer, witness, exhausted,
/// visits and candidates_tested are bitwise-identical to the sequential
/// strategy at the same budget, for every thread count. The oracle must
/// be `synchronized` when threads > 1. Requires the fast pipeline
/// (callers route legacy tuning to the sequential strategies).
WitnessSearchOutcome ParallelFindWitnessInChaseSubsets(
    const ConjunctiveQuery& q, const QueryChaseResult& chase,
    const ContainmentOracle& oracle, size_t max_atoms, size_t budget,
    size_t threads,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha,
    const WitnessTuning& tuning = {}, CancelToken* cancel = nullptr);

WitnessSearchOutcome ParallelExhaustiveWitnessSearch(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const QueryChaseResult& chase, const ContainmentOracle& oracle,
    size_t max_atoms, size_t budget, size_t threads,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha,
    const WitnessTuning& tuning = {}, CancelToken* cancel = nullptr);

}  // namespace semacyc

#endif  // SEMACYC_SEMACYC_WITNESS_SEARCH_H_
