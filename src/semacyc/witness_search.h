#ifndef SEMACYC_SEMACYC_WITNESS_SEARCH_H_
#define SEMACYC_SEMACYC_WITNESS_SEARCH_H_

#include <optional>
#include <string>

#include "acyclic/classify.h"
#include "chase/query_chase.h"
#include "rewrite/ucq_rewriter.h"

namespace semacyc {

/// Oracle answering "candidate ⊆Σ q" for a fixed (q, Σ). When Σ is
/// tgd-only and the UCQ rewriting of q is complete, candidates are checked
/// against the cached rewriting (exact, no chase of the candidate needed);
/// otherwise the candidate is chased (exact when that chase saturates).
class ContainmentOracle {
 public:
  ContainmentOracle(const ConjunctiveQuery& q, const DependencySet& sigma,
                    const ChaseOptions& chase_options,
                    const RewriteOptions& rewrite_options,
                    bool try_rewriting = true);

  /// candidate ⊆Σ q.
  Tri ContainedInQ(const ConjunctiveQuery& candidate) const;
  /// True when kNo answers are exact.
  bool exact() const { return exact_; }
  /// Whether the cached-rewriting fast path is active.
  bool uses_rewriting() const { return rewriting_.has_value(); }

 private:
  const ConjunctiveQuery& q_;
  const DependencySet& sigma_;
  ChaseOptions chase_options_;
  std::optional<RewriteResult> rewriting_;
  bool exact_ = false;
};

/// Outcome of one witness-search strategy.
struct WitnessSearchOutcome {
  Tri answer = Tri::kUnknown;
  std::optional<ConjunctiveQuery> witness;
  /// True when the strategy exhausted its whole search space (as opposed
  /// to stopping on a budget); needed for kNo claims.
  bool exhausted = false;
  size_t candidates_tested = 0;
};

/// Every strategy takes a `target` acyclicity class: candidates are kept
/// only when their hypergraph lies in `target` or a stricter class. kAlpha
/// reproduces the paper's notion; kBeta/kGamma search for witnesses from
/// the stricter strata of the hierarchy (see acyclic/classify.h).

/// Strategy "images": every homomorphic image of q inside the chase whose
/// atom set meets `target` is a candidate (q ⊆Σ image by construction).
WitnessSearchOutcome FindWitnessInQueryImages(
    const ConjunctiveQuery& q, const QueryChaseResult& chase,
    const ContainmentOracle& oracle, size_t max_homs,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha);

/// Strategy "subsets": `target`-acyclic sub-instances of the chase
/// mentioning all answer terms, up to `max_atoms` atoms (q ⊆Σ subset by
/// construction).
WitnessSearchOutcome FindWitnessInChaseSubsets(
    const ConjunctiveQuery& q, const QueryChaseResult& chase,
    const ContainmentOracle& oracle, size_t max_atoms, size_t budget,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha);

/// Strategy "exhaustive": canonical enumeration of `target`-acyclic CQs up
/// to `max_atoms` atoms over the predicates that can occur in chase(q,Σ),
/// pruned by requiring a homomorphism into the chase (this certifies
/// q ⊆Σ candidate). Complete — i.e., a kNo answer is definitive — when
/// (a) the enumeration exhausted (no budget hit), (b) the chase saturated,
/// (c) the oracle is exact, (d) `max_atoms` is at least the paper's
/// small-query bound, and (e) target == kAlpha (the small-query theorems
/// are proven for α-acyclic witnesses only). The caller checks (b)–(e).
WitnessSearchOutcome ExhaustiveWitnessSearch(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const QueryChaseResult& chase, const ContainmentOracle& oracle,
    size_t max_atoms, size_t budget,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha);

}  // namespace semacyc

#endif  // SEMACYC_SEMACYC_WITNESS_SEARCH_H_
