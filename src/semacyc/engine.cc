#include "semacyc/engine.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>
#include <unordered_set>

#include "core/canonical.h"
#include "core/core_min.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "deps/classify.h"
#include "semacyc/compaction.h"

namespace semacyc {

namespace {

/// Construction-time cancellation for the oracle's rewriting build; the
/// stored ChaseOptions keep cancel = null (per-check tokens are passed to
/// ContainedInQ instead — a cached oracle must never hold a pointer to a
/// decision-local token).
RewriteOptions WithCancel(RewriteOptions options, CancelToken* cancel) {
  options.cancel = cancel;
  return options;
}

}  // namespace

Engine::OracleEntry::OracleEntry(ConjunctiveQuery q,
                                 const PreparedSchema& schema,
                                 const SemAcOptions& options,
                                 RewriteCache* rewrite_cache,
                                 CancelToken* cancel)
    : query(std::move(q)),
      oracle(query, schema.sigma, options.chase,
             WithCancel(options.rewrite, cancel), schema.facts, rewrite_cache,
             /*try_rewriting=*/true, /*memoize=*/true,
             /*synchronized=*/true) {}

size_t Engine::OracleEntry::ApproxBytes() const {
  // The rewriting (when built) is shared with the RewriteCache; the memo
  // is this entry's own growth, folded in so the post-decision Reweigh
  // keeps the oracle cache's byte accounting honest.
  return sizeof(OracleEntry) + query.ApproxBytes() + oracle.memo_bytes();
}

namespace {

EngineOptions FromLegacyConfig(SemAcOptions options, EngineConfig config) {
  EngineOptions out;
  out.semac = options;
  out.decisions.enabled = config.cache_decisions;
  out.chase.enabled = config.cache_chases;
  out.oracles.enabled = config.reuse_oracles;
  return out;
}

/// Name tables handed to the MetricsRegistry (core/obs stays below the
/// decider's enums; the registry indexes rows by the enum values).
std::vector<std::string> StrategyNames() {
  std::vector<std::string> out;
  for (int i = 0; i <= static_cast<int>(Strategy::kDeadlineExceeded); ++i) {
    out.emplace_back(ToString(static_cast<Strategy>(i)));
  }
  return out;
}

std::vector<std::string> AnswerNames() {
  return {ToString(SemAcAnswer::kYes), ToString(SemAcAnswer::kNo),
          ToString(SemAcAnswer::kUnknown)};
}

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

Engine::Engine(DependencySet sigma, SemAcOptions options, EngineConfig config)
    : Engine(std::move(sigma), FromLegacyConfig(options, config)) {}

Engine::Engine(DependencySet sigma, EngineOptions options)
    : options_(options.semac),
      chase_cache_(options.chase),
      rewrite_cache_(options.rewrite),
      oracles_(options.oracles),
      decisions_(options.decisions),
      metrics_(StrategyNames(), AnswerNames()) {
  obs::PhaseTimer timer(&metrics_, nullptr, obs::Phase::kSchemaAnalyze);
  schema_.sigma = std::move(sigma);
  if (schema_.sigma.HasTgds()) {
    schema_.tgd_classes = Classify(schema_.sigma.tgds);
  }
  schema_.facts = SchemaFacts::Compute(schema_.sigma, schema_.tgd_classes);
}

PreparedQuery Engine::Prepare(const ConjunctiveQuery& q) const {
  obs::PhaseTimer timer(&metrics_, nullptr, obs::Phase::kPrepare);
  ++prepares_;
  PreparedQuery out;
  out.q_ = q;
  out.fp_ = CanonicalFingerprint(q);
  out.cls_ = ClassifyQuery(q);
  out.bound_ = SmallQueryBound(q, schema_.sigma, schema_.facts,
                               &out.bound_justified_);
  return out;
}

std::shared_ptr<const QueryChaseResult> Engine::ChaseOf(
    const ConjunctiveQuery& q, CancelToken* cancel, bool* inserted) const {
  if (cancel == nullptr) {
    return chase_cache_.GetOrCompute(q, schema_.sigma, options_.chase,
                                     inserted);
  }
  ChaseOptions options = options_.chase;
  options.cancel = cancel;
  return chase_cache_.GetOrCompute(q, schema_.sigma, options, inserted);
}

std::shared_ptr<const Engine::OracleEntry> Engine::OracleFor(
    const PreparedQuery& q, bool* built, CancelToken* cancel,
    bool* inserted) const {
  // Construction may build the UCQ rewriting — the cache runs the compute
  // outside its locks; a racing build of the same entry keeps the first
  // insert.
  return oracles_.GetOrCompute(
      q.fingerprint(), q.query(),
      [&]() -> std::shared_ptr<const OracleEntry> {
        if (built != nullptr) *built = true;
        auto entry = std::make_shared<const OracleEntry>(
            q.query(), schema_, options_, &rewrite_cache_, cancel);
        // An oracle built under a fired token may have had its rewriting
        // cut short (permanently inexact): never cache it — the aborting
        // caller discards it, and a later call rebuilds it whole.
        if (cancel != nullptr && cancel->triggered()) return nullptr;
        if (inserted != nullptr) *inserted = true;
        return entry;
      });
}

SemAcResult Engine::Decide(const ConjunctiveQuery& q) const {
  return Decide(Prepare(q));
}

SemAcResult Engine::Decide(const ConjunctiveQuery& q,
                           CancelToken* cancel) const {
  return Decide(Prepare(q), cancel);
}

SemAcResult Engine::Decide(const PreparedQuery& q) const {
  if (options_.deadline_ms > 0) {
    CancelToken token;
    return Decide(q, &token);  // the overload applies the deadline
  }
  return DecideWithToken(q, nullptr);
}

SemAcResult Engine::Decide(const PreparedQuery& q, CancelToken* cancel) const {
  // SetDeadlineInMs only ever tightens, so an external token's own
  // (earlier) deadline survives and deadline_ms <= 0 is a no-op.
  if (cancel != nullptr) cancel->SetDeadlineInMs(options_.deadline_ms);
  return DecideWithToken(q, cancel);
}

SemAcResult Engine::DecideWithToken(const PreparedQuery& q,
                                    CancelToken* cancel) const {
  ++decisions_count_;
  obs::TraceSink* sink = options_.trace_sink;
  std::optional<obs::DecisionTracer> tracer;
  // Root-span cache-delta baselines, read only when tracing. Exact for
  // serial callers; under concurrent decisions the deltas include the
  // other threads' traffic (documented in docs/OBSERVABILITY.md).
  size_t chase_h0 = 0, chase_m0 = 0, rewrite_h0 = 0, rewrite_m0 = 0,
         oracle_r0 = 0, dec_h0 = 0;
  if (sink != nullptr) {
    tracer.emplace();
    chase_h0 = chase_cache_.hits();
    chase_m0 = chase_cache_.misses();
    rewrite_h0 = rewrite_cache_.hits();
    rewrite_m0 = rewrite_cache_.misses();
    oracle_r0 = oracles_.hits();
    dec_h0 = decisions_.hits();
  }
  auto t0 = std::chrono::steady_clock::now();
  bool computed = false;
  bool chase_inserted = false;
  bool oracle_inserted = false;
  size_t rewrite_misses0 = rewrite_cache_.misses();
  std::shared_ptr<const SemAcResult> aborted;
  std::shared_ptr<const SemAcResult> result = decisions_.GetOrCompute(
      q.fingerprint(), q.query(),
      [&]() -> std::shared_ptr<const SemAcResult> {
        computed = true;
        SemAcResult r;
        try {
          r = DecideUncached(q, tracer.has_value() ? &*tracer : nullptr,
                             cancel, &chase_inserted, &oracle_inserted);
        } catch (const std::bad_alloc&) {
          // Allocation failure (injected or genuine) mid-pipeline: RAII
          // already unwound the phase spans; surface the same graceful
          // abort as an elapsed deadline instead of tearing the caller.
          r = SemAcResult();
          r.answer = SemAcAnswer::kUnknown;
          r.strategy = Strategy::kDeadlineExceeded;
          r.exact = false;
        }
        if (r.strategy == Strategy::kDeadlineExceeded) {
          // Aborted results are never cached (a later call must get the
          // real answer); carried out via the side channel instead.
          aborted = std::make_shared<const SemAcResult>(std::move(r));
          return nullptr;
        }
        return std::make_shared<const SemAcResult>(std::move(r));
      });
  if (result == nullptr) {
    // Aborted: erase the shared-cache entries this decision inserted, so
    // a later re-decide replays the same misses/inserts as an engine that
    // never started (the drops count as evictions, like any other drop).
    // The rewriting check is a misses delta — only this query's oracle
    // build can have missed here on a serial engine; under concurrency a
    // false positive merely drops a valid (recomputable) entry.
    if (oracle_inserted) oracles_.Erase(q.fingerprint(), q.query());
    if (rewrite_cache_.misses() != rewrite_misses0) {
      rewrite_cache_.Erase(q.query());
    }
    if (chase_inserted) chase_cache_.Erase(q.query());
    result = aborted;
  }
  int64_t ns = ElapsedNs(t0);
  metrics_.RecordDecision(static_cast<size_t>(result->strategy),
                          static_cast<size_t>(result->answer), ns, !computed);
  metrics_.RecordPhase(obs::Phase::kDecision, ns);
  // Honest oracle accounting: the pipeline may have grown this query's
  // oracle memo; re-charge its cache entry against the byte budget.
  if (computed && result->strategy != Strategy::kDeadlineExceeded) {
    oracles_.Reweigh(q.fingerprint(), q.query());
  }
  if (tracer.has_value()) {
    auto delta = [](size_t now, size_t before) {
      return static_cast<int64_t>(now - before);
    };
    tracer->AddCounter(0, "candidates_tested",
                       static_cast<int64_t>(result->candidates_tested));
    tracer->AddCounter(0, "chase_cache_hits",
                       delta(chase_cache_.hits(), chase_h0));
    tracer->AddCounter(0, "chase_cache_misses",
                       delta(chase_cache_.misses(), chase_m0));
    tracer->AddCounter(0, "rewrite_cache_hits",
                       delta(rewrite_cache_.hits(), rewrite_h0));
    tracer->AddCounter(0, "rewrite_cache_misses",
                       delta(rewrite_cache_.misses(), rewrite_m0));
    tracer->AddCounter(0, "oracle_reuses", delta(oracles_.hits(), oracle_r0));
    tracer->AddCounter(0, "decision_cache_hits",
                       delta(decisions_.hits(), dec_h0));
    obs::DecisionTrace trace =
        tracer->Finish(q.query().ToString(), ToString(result->answer),
                       ToString(result->strategy), !computed);
    sink->Consume(trace);
    metrics_.Add(obs::Counter::kTracesEmitted, 1);
  }
  return *result;
}

SemAcResult Engine::DecideUncached(const PreparedQuery& pq,
                                   obs::DecisionTracer* tracer,
                                   CancelToken* cancel, bool* chase_inserted,
                                   bool* oracle_inserted) const {
  const ConjunctiveQuery& q = pq.query();
  const DependencySet& sigma = schema_.sigma;
  const acyclic::AcyclicityClass target = options_.target_class;

  SemAcResult result;
  result.small_query_bound = pq.small_query_bound();
  result.bound_justified = pq.bound_justified();

  // Graceful abort: kUnknown with the evidence gathered so far. The
  // caller (DecideWithToken) never caches it and rolls back the cache
  // inserts this call reported.
  auto abort_result = [&result]() -> SemAcResult {
    result.answer = SemAcAnswer::kUnknown;
    result.strategy = Strategy::kDeadlineExceeded;
    result.exact = false;
    result.witness.reset();
    return result;
  };
  // Phase boundaries poll unamortized (PollNow): one clock read between
  // phases is noise, and a deadline is then honored even when the next
  // phase would stall before its first in-loop poll.
  SEMACYC_FAILPOINT("decide.start", cancel);
  if (cancel != nullptr && cancel->PollNow()) return abort_result();

  // Records a witness together with its (tightest) classification.
  auto accept = [&result](ConjunctiveQuery witness, Strategy strategy) {
    result.witness_class = ClassifyQuery(witness).cls;
    result.answer = SemAcAnswer::kYes;
    result.witness = std::move(witness);
    result.strategy = strategy;
    result.exact = true;
  };

  // Strategy 0: q itself reaches the target class (precomputed in
  // Prepare — the prepared classification is the tightest class).
  if (pq.MeetsTarget(target)) {
    accept(q, Strategy::kAlreadyAcyclic);
    return result;
  }

  // Strategy 1: the core of q reaches the target class. Complete for
  // Σ = ∅ and *every* target: constraint-free equivalence preserves cores
  // up to isomorphism, and β/γ/Berge-acyclicity are hereditary under atom
  // removal, so any witness q' ≡ q yields the (isomorphic) core of q as a
  // witness too. (For α the same completeness is the §1 classical result.)
  {
    obs::PhaseTimer timer(&metrics_, tracer, obs::Phase::kCore);
    ConjunctiveQuery core = ComputeCore(q);
    if (MeetsAcyclicityClass(core.body(), ConnectingTerms::kVariables,
                             target)) {
      accept(core, Strategy::kCore);
      return result;
    }
    if (sigma.size() == 0) {
      result.answer = SemAcAnswer::kNo;
      result.strategy = Strategy::kCore;
      result.exact = true;
      return result;
    }
  }
  SEMACYC_FAILPOINT("decide.after_core", cancel);
  if (cancel != nullptr && cancel->PollNow()) return abort_result();

  // Chase once; shared by the remaining strategies (and, through the
  // chase cache, by every other call for this query). The span measures
  // acquisition — a cache hit closes in microseconds, and build_ns still
  // reports what the original computation cost. A chase truncated by the
  // token comes back nullptr (never memoized): abort.
  std::shared_ptr<const QueryChaseResult> chase_ptr;
  {
    obs::PhaseTimer timer(&metrics_, tracer, obs::Phase::kChase);
    chase_ptr = ChaseOf(q, cancel, chase_inserted);
    if (chase_ptr != nullptr) {
      timer.Counter("steps", static_cast<int64_t>(chase_ptr->steps));
      timer.Counter("build_ns", chase_ptr->build_ns);
      timer.Counter("saturated", chase_ptr->saturated ? 1 : 0);
      timer.Counter("atoms",
                    static_cast<int64_t>(chase_ptr->instance.atoms().size()));
    }
  }
  SEMACYC_FAILPOINT("decide.after_chase", cancel);
  if (chase_ptr == nullptr || (cancel != nullptr && cancel->PollNow())) {
    return abort_result();
  }
  const QueryChaseResult& chase = *chase_ptr;
  if (chase.failed) {
    // q is unsatisfiable on every model of Σ; any acyclic query that is
    // also unsatisfiable under Σ is equivalent to it. Verifying emptiness
    // generically is involved, so report YES with no witness and flag it.
    result.answer = SemAcAnswer::kYes;
    result.strategy = Strategy::kFailingChase;
    result.exact = true;
    return result;
  }

  // Persistent per-query oracle (memo/rewriting survive across calls); a
  // disabled oracle cache hands out a transient one, mirroring the
  // free-function path. The lease keeps it alive past any eviction.
  std::shared_ptr<const OracleEntry> lease;
  {
    obs::PhaseTimer timer(&metrics_, tracer, obs::Phase::kOracle);
    bool built = false;
    lease = OracleFor(pq, &built, cancel, oracle_inserted);
    if (lease != nullptr) {
      const std::shared_ptr<const RewriteResult>& rw =
          lease->oracle.rewriting();
      if (rw != nullptr) {
        // Rewriting cost attributed only when this call built the oracle —
        // a reused oracle's rewriting was paid for (and recorded) earlier.
        if (built) metrics_.RecordPhase(obs::Phase::kRewrite, rw->build_ns);
        if (tracer != nullptr) {
          tracer->CounterSpan(
              obs::Phase::kRewrite,
              {{"build_ns", rw->build_ns},
               {"disjuncts", static_cast<int64_t>(rw->ucq.disjuncts().size())},
               {"complete", rw->complete ? 1 : 0}});
        }
      }
      timer.Counter("built", built ? 1 : 0);
      timer.Counter("exact", lease->oracle.exact() ? 1 : 0);
    }
  }
  SEMACYC_FAILPOINT("decide.after_oracle", cancel);
  if (lease == nullptr || (cancel != nullptr && cancel->PollNow())) {
    return abort_result();
  }
  const ContainmentOracle* oracle = &lease->oracle;

  // Per-decision oracle-memo deltas, harvested on every exit path below:
  // the memo counters live on the (shared, possibly reused) oracle, so
  // this decision's share is the difference.
  struct OracleMemoDeltas {
    const ContainmentOracle* oracle;
    obs::MetricsRegistry* metrics;
    obs::DecisionTracer* tracer;
    size_t h0, m0, p0;
    ~OracleMemoDeltas() {
      size_t dh = oracle->cache_hits() - h0;
      size_t dm = oracle->cache_misses() - m0;
      size_t dp = oracle->prefiltered() - p0;
      metrics->Add(obs::Counter::kOracleMemoHits, dh);
      metrics->Add(obs::Counter::kOracleMemoMisses, dm);
      metrics->Add(obs::Counter::kOraclePrefiltered, dp);
      if (tracer != nullptr) {
        tracer->AddCounter(0, "oracle_memo_hits", static_cast<int64_t>(dh));
        tracer->AddCounter(0, "oracle_memo_misses", static_cast<int64_t>(dm));
        tracer->AddCounter(0, "oracle_prefiltered", static_cast<int64_t>(dp));
      }
    }
  } memo_deltas{oracle,
                &metrics_,
                tracer,
                oracle->cache_hits(),
                oracle->cache_misses(),
                oracle->prefiltered()};

  // Strategy 2: the chase itself is acyclic -> compact it (Lemma 9). The
  // compaction preserves α-acyclicity only, so for stricter targets the
  // compacted witness is re-classified and kept only when it qualifies.
  if (chase.saturated) {
    obs::PhaseTimer timer(&metrics_, tracer, obs::Phase::kCompaction);
    if (IsAcyclic(chase.instance.atoms(), ConnectingTerms::kAllTerms)) {
      std::optional<CompactionResult> compact =
          CompactAcyclicWitness(q, chase.instance, chase.frozen_head);
      if (compact.has_value() &&
          MeetsAcyclicityClass(compact->witness.body(),
                               ConnectingTerms::kVariables, target)) {
        accept(compact->witness, Strategy::kChaseCompaction);
        return result;
      }
    }
  }
  SEMACYC_FAILPOINT("decide.after_compaction", cancel);
  if (cancel != nullptr && cancel->PollNow()) return abort_result();

  size_t bound = std::min<size_t>(result.small_query_bound,
                                  options_.witness_atoms_cap);
  result.bound_used = bound;

  // Strategy 3: homomorphic images of q inside the chase.
  if (options_.enable_images) {
    obs::PhaseTimer timer(&metrics_, tracer, obs::Phase::kImages);
    WitnessSearchOutcome images =
        FindWitnessInQueryImages(q, chase, *oracle, options_.image_homs,
                                 target, options_.witness, cancel);
    result.candidates_tested += images.candidates_tested;
    metrics_.Add(obs::Counter::kCandidatesTested, images.candidates_tested);
    timer.Counter("candidates_tested",
                  static_cast<int64_t>(images.candidates_tested));
    timer.Counter("exhausted", images.exhausted ? 1 : 0);
    if (images.answer == Tri::kYes) {
      accept(std::move(*images.witness), Strategy::kImages);
      return result;
    }
  }
  SEMACYC_FAILPOINT("decide.after_images", cancel);
  if (cancel != nullptr && cancel->PollNow()) return abort_result();

  // Strategy 4: target-acyclic sub-instances of the chase.
  if (options_.enable_subsets) {
    obs::PhaseTimer timer(&metrics_, tracer, obs::Phase::kSubsets);
    WitnessSearchOutcome subsets =
        options_.decide_threads > 1 && !options_.witness.legacy
            ? ParallelFindWitnessInChaseSubsets(
                  q, chase, *oracle, bound, options_.subset_budget,
                  options_.decide_threads, target, options_.witness, cancel)
            : FindWitnessInChaseSubsets(q, chase, *oracle, bound,
                                        options_.subset_budget, target,
                                        options_.witness, cancel);
    AddParallelStats(subsets.parallel);
    result.candidates_tested += subsets.candidates_tested;
    metrics_.Add(obs::Counter::kCandidatesTested, subsets.candidates_tested);
    metrics_.Add(obs::Counter::kEnumVisits, subsets.visits);
    metrics_.Add(obs::Counter::kClassifierPushes, subsets.classifier_pushes);
    metrics_.Add(obs::Counter::kClassifierPops, subsets.classifier_pops);
    timer.Counter("candidates_tested",
                  static_cast<int64_t>(subsets.candidates_tested));
    timer.Counter("visits", static_cast<int64_t>(subsets.visits));
    timer.Counter("classifier_pushes",
                  static_cast<int64_t>(subsets.classifier_pushes));
    timer.Counter("classifier_pops",
                  static_cast<int64_t>(subsets.classifier_pops));
    timer.Counter("budget", static_cast<int64_t>(options_.subset_budget));
    timer.Counter("budget_remaining",
                  static_cast<int64_t>(options_.subset_budget -
                                       std::min(subsets.visits,
                                                options_.subset_budget)));
    if (subsets.answer == Tri::kYes) {
      accept(std::move(*subsets.witness), Strategy::kSubsets);
      return result;
    }
  }
  SEMACYC_FAILPOINT("decide.after_subsets", cancel);
  if (cancel != nullptr && cancel->PollNow()) return abort_result();

  // Strategy 5: exhaustive canonical enumeration up to the bound.
  if (options_.enable_exhaustive) {
    obs::PhaseTimer timer(&metrics_, tracer, obs::Phase::kEnumerate);
    WitnessTuning tuning = options_.witness;
    SEMACYC_FAILPOINT_FLIP("exhaustive.flip_inc_hom",
                           &tuning.incremental_hom);
    WitnessSearchOutcome exhaustive =
        options_.decide_threads > 1 && !tuning.legacy
            ? ParallelExhaustiveWitnessSearch(
                  q, sigma, chase, *oracle, bound, options_.exhaustive_budget,
                  options_.decide_threads, target, tuning, cancel)
            : ExhaustiveWitnessSearch(q, sigma, chase, *oracle, bound,
                                      options_.exhaustive_budget, target,
                                      tuning, cancel);
    AddParallelStats(exhaustive.parallel);
    result.candidates_tested += exhaustive.candidates_tested;
    metrics_.Add(obs::Counter::kCandidatesTested,
                 exhaustive.candidates_tested);
    metrics_.Add(obs::Counter::kEnumVisits, exhaustive.visits);
    metrics_.Add(obs::Counter::kClassifierPushes,
                 exhaustive.classifier_pushes);
    metrics_.Add(obs::Counter::kClassifierPops, exhaustive.classifier_pops);
    metrics_.Add(obs::Counter::kHomPushes, exhaustive.hom.pushes);
    metrics_.Add(obs::Counter::kHomDomainWipeouts, exhaustive.hom.fc_rejects);
    metrics_.Add(obs::Counter::kHomExtends, exhaustive.hom.extends);
    metrics_.Add(obs::Counter::kHomRepairs, exhaustive.hom.repairs);
    metrics_.Add(obs::Counter::kHomRepairFails, exhaustive.hom.repair_fails);
    metrics_.Add(obs::Counter::kHomDeadPrefix, exhaustive.hom.dead_prefix);
    timer.Counter("candidates_tested",
                  static_cast<int64_t>(exhaustive.candidates_tested));
    timer.Counter("visits", static_cast<int64_t>(exhaustive.visits));
    timer.Counter("classifier_pushes",
                  static_cast<int64_t>(exhaustive.classifier_pushes));
    timer.Counter("classifier_pops",
                  static_cast<int64_t>(exhaustive.classifier_pops));
    timer.Counter("budget", static_cast<int64_t>(options_.exhaustive_budget));
    timer.Counter(
        "budget_remaining",
        static_cast<int64_t>(options_.exhaustive_budget -
                             std::min(exhaustive.visits,
                                      options_.exhaustive_budget)));
    if (tracer != nullptr && exhaustive.hom.pushes > 0) {
      // Counter-only child span: the per-push hom session is the hot loop,
      // so its telemetry is harvested once from the strategy's own
      // bookkeeping instead of timing individual pushes.
      tracer->CounterSpan(
          obs::Phase::kHomCheck,
          {{"pushes", static_cast<int64_t>(exhaustive.hom.pushes)},
           {"domain_wipeouts", static_cast<int64_t>(exhaustive.hom.fc_rejects)},
           {"extends", static_cast<int64_t>(exhaustive.hom.extends)},
           {"repairs", static_cast<int64_t>(exhaustive.hom.repairs)},
           {"repair_fails", static_cast<int64_t>(exhaustive.hom.repair_fails)},
           {"dead_prefix",
            static_cast<int64_t>(exhaustive.hom.dead_prefix)}});
    }
    if (exhaustive.answer == Tri::kYes) {
      accept(std::move(*exhaustive.witness), Strategy::kExhaustive);
      return result;
    }
    // A definitive NO needs: full enumeration, saturated chase, exact
    // oracle, an uncapped theoretical bound, and the α target (the
    // small-query theorems only cover α-acyclic witnesses).
    if (exhaustive.exhausted && chase.saturated && oracle->exact() &&
        result.bound_justified && bound >= result.small_query_bound &&
        target == acyclic::AcyclicityClass::kAlpha) {
      result.answer = SemAcAnswer::kNo;
      result.strategy = Strategy::kExhaustive;
      result.exact = true;
      return result;
    }
  }
  SEMACYC_FAILPOINT("decide.after_exhaustive", cancel);
  if (cancel != nullptr && cancel->PollNow()) return abort_result();

  result.answer = SemAcAnswer::kUnknown;
  result.strategy = Strategy::kBudgetExhausted;
  result.exact = false;
  return result;
}

std::vector<SemAcResult> Engine::DecideBatch(
    const std::vector<PreparedQuery>& batch, size_t threads) const {
  return DecideBatch(batch, threads, BatchDeadlines{});
}

std::vector<SemAcResult> Engine::DecideBatch(
    const std::vector<PreparedQuery>& batch, size_t threads,
    const BatchDeadlines& deadlines) const {
  std::vector<SemAcResult> out(batch.size());
  // The batch deadline is one shared token; each query chains a child off
  // it so a blown batch budget aborts every remaining decision while a
  // blown per-query budget hurts only its own.
  const bool timed = deadlines.batch_ms > 0 || deadlines.per_query_ms > 0;
  CancelToken batch_token;
  if (deadlines.batch_ms > 0) batch_token.SetDeadlineInMs(deadlines.batch_ms);
  auto decide_one = [&](size_t i) {
    if (!timed) {
      out[i] = Decide(batch[i]);
      return;
    }
    CancelToken token;
    token.SetParent(&batch_token);
    if (deadlines.per_query_ms > 0) {
      token.SetDeadlineInMs(deadlines.per_query_ms);
    }
    out[i] = Decide(batch[i], &token);
  };
  threads = std::min(threads, batch.size());
  if (threads <= 1) {
    for (size_t i = 0; i < batch.size(); ++i) decide_one(i);
    return out;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i; (i = next.fetch_add(1)) < batch.size();) {
      decide_one(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return out;
}

Tri Engine::ContainedUnderCached(const ConjunctiveQuery& q1,
                                 const ConjunctiveQuery& q2) const {
  // Lemma 1 off the shared chase memo: c(x̄1) ∈ q2(chase(q1, Σ)).
  std::shared_ptr<const QueryChaseResult> chased = ChaseOf(q1);
  if (chased->failed) return Tri::kYes;  // q1 is empty on every model of Σ
  if (EvaluatesTo(q2, chased->instance, chased->frozen_head)) return Tri::kYes;
  return chased->saturated ? Tri::kNo : Tri::kUnknown;
}

void Engine::AddParallelStats(const WorkStealStats& s) const {
  if (s.units_claimed == 0) return;
  metrics_.Add(obs::Counter::kParallelUnits, s.units_claimed);
  metrics_.Add(obs::Counter::kParallelSteals, s.steals);
  metrics_.Add(obs::Counter::kParallelReplays, s.replays);
  metrics_.Add(obs::Counter::kParallelWastedVisits, s.wasted_visits);
  metrics_.Add(obs::Counter::kParallelCommitWaits, s.commit_waits);
}

UcqSemAcResult Engine::DecideUcq(const UnionQuery& Q) const {
  UcqSemAcResult result;
  const auto& disjuncts = Q.disjuncts();
  result.disjuncts.resize(disjuncts.size());
  result.exact = true;

  // Redundancy pass (UCQ minimization under Σ): q_i is redundant when some
  // other kept disjunct contains it. Mutually equivalent disjuncts keep
  // the one with the smaller index.
  std::vector<bool> redundant(disjuncts.size(), false);
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    for (size_t j = 0; j < disjuncts.size(); ++j) {
      if (i == j || redundant[j]) continue;
      Tri forward = ContainedUnderCached(disjuncts[i], disjuncts[j]);
      if (forward != Tri::kYes) {
        if (forward == Tri::kUnknown) result.exact = false;
        continue;
      }
      Tri backward = ContainedUnderCached(disjuncts[j], disjuncts[i]);
      if (backward == Tri::kYes && j > i) continue;  // keep the earlier one
      redundant[i] = true;
      break;
    }
    result.disjuncts[i].redundant = redundant[i];
  }

  std::vector<ConjunctiveQuery> witness_disjuncts;
  bool all_yes = true;
  bool any_unknown = false;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (redundant[i]) continue;
    SemAcResult decision = Decide(disjuncts[i]);
    result.disjuncts[i].decision = decision;
    if (decision.answer == SemAcAnswer::kYes) {
      // A witness-less YES (failing chase) means the disjunct is empty
      // under Σ: dropping it from the union preserves equivalence.
      if (decision.witness.has_value()) {
        witness_disjuncts.push_back(*decision.witness);
      }
    } else if (decision.answer == SemAcAnswer::kNo) {
      all_yes = false;
      if (!decision.exact) result.exact = false;
    } else {
      all_yes = false;
      any_unknown = true;
    }
  }

  if (all_yes) {
    result.answer = SemAcAnswer::kYes;
    // Every kept disjunct empty under Σ leaves nothing to assemble: the
    // UCQ itself is empty under Σ, a witness-less YES like the CQ case.
    if (!witness_disjuncts.empty()) {
      result.witness = UnionQuery(std::move(witness_disjuncts));
    }
  } else if (any_unknown || !result.exact) {
    result.answer = SemAcAnswer::kUnknown;
    result.exact = false;
  } else {
    result.answer = SemAcAnswer::kNo;
  }
  return result;
}

namespace {

/// Collects acyclic candidates q' with q' ⊆Σ q: acyclic chase subsets
/// verified through the oracle, like the decider's YES-strategies, but
/// keeping every verified candidate instead of stopping at the first
/// equivalent (§8.2's A(q), up to the explored budget).
std::vector<ConjunctiveQuery> CollectApproximationCandidates(
    const QueryChaseResult& chase, const ContainmentOracle& oracle,
    size_t bound, size_t budget, CancelToken* cancel) {
  std::vector<ConjunctiveQuery> out;
  std::unordered_set<uint64_t> seen;
  auto consider = [&](const ConjunctiveQuery& candidate) {
    if (!seen.insert(CanonicalFingerprint(candidate)).second) return;
    if (oracle.ContainedInQ(candidate, cancel) == Tri::kYes) {
      out.push_back(candidate);
    }
  };

  const auto& atoms = chase.instance.atoms();
  const size_t m = atoms.size();
  size_t visits = 0;
  std::vector<uint32_t> subset;
  std::function<void(size_t)> dfs = [&](size_t next) {
    if (++visits > budget) return;
    SEMACYC_FAILPOINT("approximate.visit", cancel);
    if (cancel != nullptr && cancel->Poll()) return;
    if (!subset.empty() && subset.size() <= bound) {
      Instance sub = chase.instance.Restrict(subset);
      bool covers = true;
      for (Term t : chase.frozen_head) {
        if (t.IsConstant() && !t.IsFrozenNull()) continue;
        if (sub.AtomsMentioning(t).empty()) {
          covers = false;
          break;
        }
      }
      if (covers && IsAcyclic(sub.atoms(), ConnectingTerms::kAllTerms)) {
        consider(QueryFromInstance(sub, chase.frozen_head));
      }
    }
    if (subset.size() >= bound) return;
    for (size_t i = next; i < m; ++i) {
      subset.push_back(static_cast<uint32_t>(i));
      dfs(i + 1);
      subset.pop_back();
    }
  };
  dfs(0);
  return out;
}

}  // namespace

ApproximateOutcome Engine::Approximate(const PreparedQuery& pq) const {
  ApproximateOutcome out;
  // Constants in q block the generic fallback witness (footnote in §8.2).
  for (const Atom& a : pq.query().body()) {
    if (a.MentionsKind(TermKind::kConstant)) {
      out.status = Status::Unsupported(
          "acyclic approximation needs a constant-free query (§8.2)");
      return out;
    }
  }

  // One deadline spans the whole call — the decision, the candidate
  // sweep, and the maximality pass all share the token, so Approximate as
  // a whole returns within deadline_ms (plus one poll stride of slack).
  CancelToken token;
  CancelToken* cancel = nullptr;
  if (options_.deadline_ms > 0) {
    token.SetDeadlineInMs(options_.deadline_ms);
    cancel = &token;
  }

  // If q is semantically acyclic, its witness is the (exact) approximation.
  SemAcResult decision =
      cancel != nullptr ? Decide(pq, cancel) : Decide(pq);
  if (decision.strategy == Strategy::kDeadlineExceeded) {
    out.status = Status::DeadlineExceeded(
        "decision aborted by deadline before an approximation was built");
    return out;
  }
  if (decision.answer == SemAcAnswer::kYes && decision.witness.has_value()) {
    out.result.approximation = *decision.witness;
    out.result.is_exact = true;
    out.result.maximality_exact = true;
    out.result.candidates = {*decision.witness};
    return out;
  }

  std::shared_ptr<const QueryChaseResult> chase = ChaseOf(pq.query(), cancel);
  std::shared_ptr<const OracleEntry> lease =
      chase != nullptr ? OracleFor(pq, nullptr, cancel) : nullptr;
  if (chase == nullptr || lease == nullptr) {
    // Only a fired token yields null artifacts (they are never cached in
    // that state), so this is the deadline elapsing mid-build.
    out.status = Status::DeadlineExceeded(
        "deadline elapsed while building the chase/oracle artifacts");
    return out;
  }
  const ContainmentOracle* oracle = &lease->oracle;
  size_t bound =
      std::min<size_t>(pq.small_query_bound(), options_.witness_atoms_cap);
  out.result.candidates = CollectApproximationCandidates(
      *chase, *oracle, bound, options_.subset_budget, cancel);
  // The candidate sweep grows the oracle memo; re-charge its cache entry.
  // Do this even on abort below — the partial sweep's memo growth is real.
  oracles_.Reweigh(pq.fingerprint(), pq.query());
  if (cancel != nullptr && cancel->triggered()) {
    out.status = Status::DeadlineExceeded(
        "deadline elapsed during the candidate sweep; partial candidate "
        "set discarded");
    return out;
  }
  out.result.candidates.push_back(
      TrivialAcyclicUnderApproximation(pq.query()));

  // Pick a maximal element under ⊆Σ among the collected candidates. The
  // chase memo for this is call-local: candidates are transient synthetic
  // queries, and pinning their chases in the engine-lifetime cache would
  // grow it by up to subset_budget entries per Approximate call.
  QueryChaseCache local_chases;
  ChaseOptions maximality_chase = options_.chase;
  maximality_chase.cancel = cancel;
  auto contained = [&](const ConjunctiveQuery& a,
                       const ConjunctiveQuery& b) -> Tri {
    std::shared_ptr<const QueryChaseResult> chased =
        local_chases.GetOrCompute(a, schema_.sigma, maximality_chase);
    if (chased == nullptr) return Tri::kUnknown;  // cancelled mid-chase
    if (chased->failed) return Tri::kYes;
    if (EvaluatesTo(b, chased->instance, chased->frozen_head, cancel)) {
      return Tri::kYes;
    }
    if (cancel != nullptr && cancel->triggered()) return Tri::kUnknown;
    return chased->saturated ? Tri::kNo : Tri::kUnknown;
  };
  auto& candidates = out.result.candidates;
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (cancel != nullptr && cancel->PollNow()) {
      out.status = Status::DeadlineExceeded(
          "deadline elapsed during the maximality pass");
      return out;
    }
    // candidates[i] strictly above current best?
    Tri up = contained(candidates[best], candidates[i]);
    Tri down = contained(candidates[i], candidates[best]);
    if (up == Tri::kYes && down != Tri::kYes) best = i;
  }
  if (cancel != nullptr && cancel->triggered()) {
    out.status = Status::DeadlineExceeded(
        "deadline elapsed during the maximality pass");
    return out;
  }
  out.result.approximation = candidates[best];
  out.result.is_exact = false;
  out.result.maximality_exact = decision.exact;
  return out;
}

bool Engine::EvalPrologue(const PreparedQuery& q, CancelToken* cancel,
                          EvalOutcome* out,
                          std::optional<JoinTreeView>* tree) const {
  SemAcResult decision = Decide(q, cancel);
  if (decision.strategy == Strategy::kDeadlineExceeded) {
    out->status = Status::DeadlineExceeded(
        "decision aborted by deadline before a reformulation was found");
    return false;
  }
  if (decision.answer != SemAcAnswer::kYes || !decision.witness.has_value()) {
    out->status = Status::NotFound(
        decision.answer == SemAcAnswer::kYes
            ? "q is empty under the schema (failing chase); its answer set "
              "is empty on every database satisfying it"
            : "no acyclic reformulation found within the budgets");
    return false;
  }
  out->reformulated = true;
  out->witness = *decision.witness;
  // View-based join tree over the witness body: the view references the
  // outcome's own witness (already in place above), so nothing is copied.
  *tree = BuildJoinTreeView(out->witness.body(), ConnectingTerms::kVariables);
  if (!tree->has_value()) {
    // Unreachable for a verified witness; fail soft rather than crash.
    out->reformulated = false;
    out->status = Status::NotFound("witness unexpectedly cyclic");
    return false;
  }
  // Root at a head-covering atom so the answer-assembly DP stays linear
  // (join_tree.h RerootForHead) — both evaluation paths use this view.
  **tree = RerootForHead(**tree, out->witness.head());
  return true;
}

EvalOutcome Engine::Eval(const PreparedQuery& q,
                         const Instance& database) const {
  return Eval(q, database, EvalOptions{});
}

EvalOutcome Engine::Eval(const PreparedQuery& q, const Instance& database,
                         const EvalOptions& opts) const {
  if (opts.path == EvalOptions::Path::kColumnar) {
    return Eval(q, data::ColumnarInstance::FromInstance(database), opts);
  }
  EvalOutcome out;
  // With no external token, options_.deadline_ms still applies: a local
  // token carries it through the decision and the evaluation (mirrors
  // Decide(PreparedQuery)'s deadline behavior).
  CancelToken deadline_token;
  CancelToken* cancel = opts.cancel;
  if (cancel == nullptr && options_.deadline_ms > 0) cancel = &deadline_token;
  std::optional<JoinTreeView> tree;
  if (!EvalPrologue(q, cancel, &out, &tree)) return out;
  obs::PhaseTimer timer(&metrics_, nullptr, obs::Phase::kEval);
  out.evaluation = EvaluateAcyclic(out.witness, *tree, database);
  metrics_.Add(obs::Counter::kEvalSemijoinProbes,
               out.evaluation.semijoin_probes);
  return out;
}

EvalOutcome Engine::Eval(const PreparedQuery& q,
                         const data::ColumnarInstance& database,
                         const EvalOptions& opts) const {
  EvalOutcome out;
  // Same deadline fallback as the row path: a local token carries
  // options_.deadline_ms through the decision and the program run.
  CancelToken deadline_token;
  CancelToken* cancel = opts.cancel;
  if (cancel == nullptr && options_.deadline_ms > 0) cancel = &deadline_token;
  std::optional<JoinTreeView> tree;
  if (!EvalPrologue(q, cancel, &out, &tree)) return out;
  obs::PhaseTimer timer(&metrics_, nullptr, obs::Phase::kEval);
  data::SemiJoinProgram program =
      data::SemiJoinProgram::Compile(out.witness, *tree);
  data::ExecOptions exec;
  exec.cancel = cancel;
  data::ColumnarEvalResult result = program.Execute(database, exec);
  out.exec_stats = result.stats;
  metrics_.Add(obs::Counter::kEvalRowsScanned, result.stats.rows_scanned);
  metrics_.Add(obs::Counter::kEvalSemijoinProbes,
               result.stats.semijoin_probes);
  metrics_.Add(obs::Counter::kEvalDpRows, result.stats.dp_rows);
  if (result.aborted) {
    out.status = Status::DeadlineExceeded(
        "evaluation aborted by deadline/cancellation mid-program; the "
        "engine stays reusable");
    return out;
  }
  out.columnar = true;
  out.evaluation.ok = true;
  out.evaluation.answers = std::move(result.answers);
  out.evaluation.semijoin_probes = result.stats.semijoin_probes;
  return out;
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.prepares = prepares_.load();
  s.decisions = decisions_count_.load();
  s.decision_cache_hits = decisions_.hits();
  s.chase_cache_hits = chase_cache_.hits();
  s.chase_cache_misses = chase_cache_.misses();
  s.rewrite_cache_hits = rewrite_cache_.hits();
  s.rewrite_cache_misses = rewrite_cache_.misses();
  s.oracle_reuses = oracles_.hits();
  // Snapshot the entries first, then read the per-oracle counters outside
  // the cache's shard locks: each counter read takes that oracle's answer
  // lock, which an in-flight containment check may hold for a long chase —
  // nesting it under a shard mutex would let a stats poll stall every
  // concurrent Decide at OracleFor. The shared_ptrs keep the entries
  // alive across a concurrent eviction; an evicted oracle's counters
  // leave the aggregate with it.
  for (const std::shared_ptr<const OracleEntry>& entry : oracles_.Values()) {
    s.oracle_hits += entry->oracle.cache_hits();
    s.oracle_misses += entry->oracle.cache_misses();
    s.oracle_prefiltered += entry->oracle.prefiltered();
  }
  return s;
}

EngineCacheStats Engine::Stats() const {
  EngineCacheStats s;
  s.chase = chase_cache_.Stats();
  s.rewrite = rewrite_cache_.Stats();
  s.oracles = oracles_.Stats();
  s.decisions = decisions_.Stats();
  return s;
}

void Engine::TrimCaches() const {
  chase_cache_.Trim(0);
  rewrite_cache_.Trim(0);
  oracles_.Trim(0);
  decisions_.Trim(0);
}

}  // namespace semacyc
