#include "semacyc/compaction.h"

#include <cassert>
#include <unordered_set>

#include "core/homomorphism.h"

namespace semacyc {

std::optional<CompactionResult> CompactAcyclicWitness(
    const ConjunctiveQuery& q, const Instance& acyclic_instance,
    const std::vector<Term>& target_tuple) {
  std::optional<JoinTree> tree =
      BuildJoinTree(acyclic_instance.atoms(), ConnectingTerms::kAllTerms);
  if (!tree.has_value()) return std::nullopt;

  // A homomorphism witnessing c̄ ∈ q(I).
  Substitution fixed;
  assert(target_tuple.size() == q.head().size());
  for (size_t i = 0; i < target_tuple.size(); ++i) {
    Term h = q.head()[i];
    if (!h.IsVariable()) {
      if (h != target_tuple[i]) return std::nullopt;
      continue;
    }
    auto it = fixed.find(h);
    if (it != fixed.end()) {
      if (it->second != target_tuple[i]) return std::nullopt;
    } else {
      fixed.emplace(h, target_tuple[i]);
    }
  }
  std::optional<Substitution> hom =
      FindHomomorphism(q.body(), acyclic_instance, fixed);
  if (!hom.has_value()) return std::nullopt;

  // Image nodes: join-tree nodes whose atom is an image atom.
  std::unordered_set<Atom, AtomHash> image_atoms;
  for (const Atom& a : q.body()) image_atoms.insert(Apply(*hom, a));
  const size_t n = tree->size();
  std::vector<bool> in_subforest(n, false);
  std::vector<bool> image(n, false);
  for (size_t v = 0; v < n; ++v) {
    if (image_atoms.count(tree->atoms()[v])) {
      image[v] = true;
      // Mark v and its ancestors.
      int cur = static_cast<int>(v);
      while (cur >= 0 && !in_subforest[cur]) {
        in_subforest[cur] = true;
        cur = tree->parent()[cur];
      }
    }
  }

  // Children counts inside the subforest.
  std::vector<int> sub_children(n, 0);
  for (size_t v = 0; v < n; ++v) {
    if (!in_subforest[v]) continue;
    int p = tree->parent()[v];
    if (p >= 0 && in_subforest[p]) ++sub_children[p];
  }

  // Keep: image nodes, subforest roots, and branching nodes.
  std::vector<bool> keep(n, false);
  for (size_t v = 0; v < n; ++v) {
    if (!in_subforest[v]) continue;
    int p = tree->parent()[v];
    bool is_root = (p < 0) || !in_subforest[p];
    if (image[v] || is_root || sub_children[v] >= 2) keep[v] = true;
  }

  CompactionResult result;
  for (size_t v = 0; v < n; ++v) {
    if (keep[v]) result.sub_instance.Insert(tree->atoms()[v]);
  }
  result.kept_nodes = result.sub_instance.size();
  assert(result.kept_nodes <= 2 * std::max<size_t>(q.size(), 1));
  assert(IsAcyclic(result.sub_instance.atoms(), ConnectingTerms::kAllTerms));

  result.witness = QueryFromInstance(result.sub_instance, target_tuple);
  assert(IsAcyclic(result.witness));
  return result;
}

}  // namespace semacyc
