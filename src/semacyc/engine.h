#ifndef SEMACYC_SEMACYC_ENGINE_H_
#define SEMACYC_SEMACYC_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/fingerprint_cache.h"
#include "core/obs.h"
#include "data/columnar.h"
#include "data/semijoin_program.h"
#include "deps/classify.h"
#include "eval/yannakakis.h"
#include "semacyc/approximation.h"
#include "semacyc/decider.h"
#include "semacyc/ucq_semac.h"

namespace semacyc {

/// Outcome status for Engine entrypoints whose free-function ancestors
/// returned bare std::optional / silent flags: the code says *why* there is
/// no payload, not just that there is none.
struct Status {
  enum class Code {
    kOk,
    /// The input is outside the operation's supported fragment (e.g.
    /// approximation of a query with constants, §8.2 footnote).
    kUnsupported,
    /// The operation ran but could not produce the payload within its
    /// budgets / with a definitive answer (e.g. no acyclic reformulation
    /// found for Eval).
    kNotFound,
    /// The operation was aborted cooperatively (SemAcOptions::deadline_ms
    /// elapsed or a CancelToken fired) before it finished. The engine
    /// stays fully reusable; retry without a deadline for the exact
    /// answer.
    kDeadlineExceeded,
  };

  Code code = Code::kOk;
  std::string message;

  bool ok() const { return code == Code::kOk; }
  static Status Ok() { return {}; }
  static Status Unsupported(std::string message) {
    return {Code::kUnsupported, std::move(message)};
  }
  static Status NotFound(std::string message) {
    return {Code::kNotFound, std::move(message)};
  }
  static Status DeadlineExceeded(std::string message) {
    return {Code::kDeadlineExceeded, std::move(message)};
  }
};

/// Σ analyzed once, shared by every decision against this schema: the
/// dependency-set classification, the guardedness/stickiness/termination
/// facts, and the predicate-level reachability graph behind the oracle
/// prefilter. Built by Engine's constructor; immutable afterwards.
struct PreparedSchema {
  DependencySet sigma;
  /// Classification of sigma.tgds (all flags false when there are none).
  TgdClassification tgd_classes;
  /// Derived facts consumed by oracles and the small-query bound.
  SchemaFacts facts;
};

/// A query analyzed once against an Engine's schema: hypergraph
/// classification (with certificates), canonical fingerprint (the shared
/// cache key) and the paper's small-query bound. Cheap to copy; valid for
/// any Engine over the same schema, but the bound is schema-dependent —
/// prepare per engine.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  const ConjunctiveQuery& query() const { return q_; }
  uint64_t fingerprint() const { return fp_; }
  /// Classification of the body hypergraph (kVariables connecting).
  const acyclic::Classification& classification() const { return cls_; }
  acyclic::AcyclicityClass acyclicity_class() const { return cls_.cls; }
  bool MeetsTarget(acyclic::AcyclicityClass target) const {
    return acyclic::AtLeast(cls_.cls, target);
  }
  /// The paper's small-query bound for (q, Σ) and whether it is backed by
  /// one of the small-query theorems (see SmallQueryBound).
  size_t small_query_bound() const { return bound_; }
  bool bound_justified() const { return bound_justified_; }

 private:
  friend class Engine;
  ConjunctiveQuery q_;
  uint64_t fp_ = 0;
  acyclic::Classification cls_;
  size_t bound_ = 0;
  bool bound_justified_ = false;
};

/// Cache/behavior switches. The defaults are the production configuration;
/// tests and benches disable individual layers to expose the one below
/// (e.g. cache_decisions = false measures oracle-memo reuse in isolation).
/// Each toggle maps onto the `enabled` flag of the corresponding
/// CacheConfig in EngineOptions; this struct survives as the legacy
/// surface of the original constructor.
struct EngineConfig {
  /// Serve repeat decisions of the same query from a result cache
  /// (isomorphism-resolved: an isomorphic query gets the cached result,
  /// whose witness is stated over the original query's variables).
  bool cache_decisions = true;
  /// Share chase(q, Σ) across entrypoints and repeat calls.
  bool cache_chases = true;
  /// Keep one containment oracle per query alive across calls, so its
  /// memo/rewriting survive (the free functions rebuild one per call).
  bool reuse_oracles = true;
};

/// Full construction surface of an Engine: the decision-pipeline options
/// plus one CacheConfig per cache. The defaults are the production
/// configuration — all four caches enabled and unbounded, exactly the
/// legacy-constructor behavior; set max_bytes/max_entries to turn on LRU
/// eviction per cache (multi-tenant / long-running services).
struct EngineOptions {
  /// Decision-pipeline options (budgets, target class, witness tuning).
  /// Default: the production configuration of SemAcOptions.
  SemAcOptions semac;
  /// chase(q, Σ) memo (iso-resolved with a rename layer; see
  /// QueryChaseCache). Default: enabled, unbounded. Typically the
  /// largest cache — entries hold whole chase instances — so bound this
  /// one first when memory matters.
  CacheConfig chase;
  /// UCQ rewritings feeding the containment oracles (iso-resolved).
  /// Default: enabled, unbounded. Only populated on rewritable schemas;
  /// rarely needs a budget of its own.
  CacheConfig rewrite;
  /// Persistent per-query containment oracles (iso-resolved). Default:
  /// enabled, unbounded. An oracle's memo grows after insertion; the
  /// Engine re-charges the entry after each decision that used it
  /// (FingerprintCache::Reweigh), so byte budgets stay honest — the
  /// growth shows up as CacheStats::recharged_bytes.
  CacheConfig oracles;
  /// Decision results for repeat (or isomorphic) queries. Default:
  /// enabled, unbounded. Entries are small; disable only to measure the
  /// layers beneath (every repeat then re-runs the pipeline).
  CacheConfig decisions;

  /// Splits one byte budget across the four caches — the shape of the
  /// CLI's --cache-mb: the chase memo gets half (its entries are whole
  /// instances), the oracle map a quarter, rewritings and decisions an
  /// eighth each. Zero restores unbounded.
  void SetTotalCacheBudget(size_t total_bytes) {
    chase.max_bytes = total_bytes / 2;
    oracles.max_bytes = total_bytes / 4;
    rewrite.max_bytes = total_bytes / 8;
    decisions.max_bytes = total_bytes / 8;
  }
};

/// Per-cache introspection snapshot (see Engine::Stats): one CacheStats —
/// entries, bytes, hits/misses/inserts/evictions, configured budgets —
/// for each of the four FingerprintCaches.
struct EngineCacheStats {
  CacheStats chase;
  CacheStats rewrite;
  CacheStats oracles;
  CacheStats decisions;

  /// Resident bytes summed across the four caches — the per-tenant
  /// accounting unit behind semacycd's split cache budgets (the server
  /// reports one figure per tenant engine; see docs/SERVING.md).
  size_t TotalBytes() const {
    return chase.bytes + rewrite.bytes + oracles.bytes + decisions.bytes;
  }
};

/// Aggregate cache counters (see Engine::stats).
struct EngineStats {
  size_t prepares = 0;
  size_t decisions = 0;
  size_t decision_cache_hits = 0;
  size_t chase_cache_hits = 0;
  size_t chase_cache_misses = 0;
  size_t rewrite_cache_hits = 0;
  size_t rewrite_cache_misses = 0;
  /// Oracle-entry reuse (a Decide found its query's oracle already built).
  size_t oracle_reuses = 0;
  /// Summed over all live oracles: memoized answers served / computed /
  /// rejected by the reachability prefilter.
  size_t oracle_hits = 0;
  size_t oracle_misses = 0;
  size_t oracle_prefiltered = 0;
};

/// Result of Engine::Approximate — ApproximationResult plus an explicit
/// status (the free function returns std::nullopt for unsupported inputs).
struct ApproximateOutcome {
  Status status;
  ApproximationResult result;  // meaningful when status.ok()
};

/// Switches for Engine::Eval. The default is the production path: compile
/// the witness into a SemiJoinProgram and run it over the columnar data
/// plane. The row path survives as the differential baseline — both paths
/// produce identical answer sets (pinned by tests/columnar_eval_test).
struct EvalOptions {
  enum class Path {
    kColumnar,  // SemiJoinProgram over a ColumnarInstance (default)
    kRow,       // legacy tuple-at-a-time EvaluateAcyclic
  };
  Path path = Path::kColumnar;
  /// Polled throughout the decision and at every op boundary of the
  /// evaluation (not owned; may be null). A fired token yields
  /// Status::kDeadlineExceeded with the engine immediately reusable.
  CancelToken* cancel = nullptr;
};

/// Result of Engine::Eval — the Prop 24 FPT pipeline with an explicit
/// status instead of a silent `reformulated = false`.
struct EvalOutcome {
  Status status;
  bool reformulated = false;
  /// True when the answers came from the columnar data plane.
  bool columnar = false;
  ConjunctiveQuery witness;
  YannakakisResult evaluation;  // meaningful when reformulated
  /// Columnar execution cost accounting (zeros on the row path).
  data::ExecStats exec_stats;
};

/// Session-oriented entrypoint for the realistic workload — many queries
/// against one fixed Σ. An Engine analyzes the schema once and keeps every
/// reusable artifact alive across calls:
///
///   * the PreparedSchema (dependency classification, termination and
///     boundedness facts, the predicate-reachability graph);
///   * a chase memo (chase(q, Σ) computed once per distinct query, with
///     an iso-resolution rename layer for α-renamed variants);
///   * a UCQ-rewriting cache feeding the containment oracles;
///   * one memoized ContainmentOracle per distinct query, persistent
///     across calls and strategies;
///   * a decision cache serving repeat (or isomorphic) queries instantly.
///
/// All four are FingerprintCache instances governed by the CacheConfigs
/// of EngineOptions: unbounded by default, LRU-evicting under a byte or
/// entry budget, introspectable through Stats() and droppable through
/// TrimCaches(). Eviction never changes answers — an evicted artifact is
/// simply recomputed on the next miss.
///
/// The free functions (DecideSemanticAcyclicity, AcyclicApproximation,
/// DecideUcqSemanticAcyclicity, FptEvaluate) are one-shot wrappers over a
/// transient Engine, so both paths run identical code.
///
/// Thread safety: all public methods are const and safe to call
/// concurrently on a shared Engine. Shared caches are sharded and
/// mutex-guarded per shard; per-query oracles serialize individual
/// containment answers (concurrent decisions of *distinct* queries do not
/// contend). Racing computations of the same artifact keep the first
/// inserted result, so every caller observes the same answer. DecideBatch
/// with threads > 1 is exactly concurrent Decide over the batch.
class Engine {
 public:
  explicit Engine(DependencySet sigma, SemAcOptions options = {},
                  EngineConfig config = {});
  /// Full construction surface: per-cache budgets and policies. The legacy
  /// constructor above delegates here (its EngineConfig toggles become the
  /// caches' `enabled` flags).
  Engine(DependencySet sigma, EngineOptions options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const PreparedSchema& schema() const { return schema_; }
  const DependencySet& sigma() const { return schema_.sigma; }
  const SemAcOptions& options() const { return options_; }

  /// Analyzes q against this schema (classification with certificates,
  /// fingerprint, small-query bound). Prepared state is immutable and
  /// copyable; prepare once, decide many times.
  PreparedQuery Prepare(const ConjunctiveQuery& q) const;

  /// Decides whether q is semantically acyclic under the schema (same
  /// pipeline and guarantees as DecideSemanticAcyclicity, off prepared and
  /// cached state). With SemAcOptions::deadline_ms set, the pipeline
  /// aborts cooperatively when the deadline elapses: the result reports
  /// Strategy::kDeadlineExceeded / answer kUnknown with the evidence
  /// gathered so far, is never cached, and the engine (sessions unwound,
  /// all four caches coherent) is immediately reusable.
  SemAcResult Decide(const PreparedQuery& q) const;
  /// Convenience: Prepare + Decide.
  SemAcResult Decide(const ConjunctiveQuery& q) const;

  /// External-cancellation variants: `cancel` (not owned; may be null) is
  /// polled throughout the pipeline — RequestCancel() from any thread
  /// aborts the decision at its next poll point, with the same graceful
  /// kDeadlineExceeded outcome as an elapsed deadline. deadline_ms (when
  /// set) is folded into the token, so the effective deadline is the
  /// tighter of the two.
  SemAcResult Decide(const PreparedQuery& q, CancelToken* cancel) const;
  SemAcResult Decide(const ConjunctiveQuery& q, CancelToken* cancel) const;

  /// Deadlines for one DecideBatch call, on top of (and tightened by)
  /// SemAcOptions::deadline_ms. Zero = none.
  struct BatchDeadlines {
    /// Wall-clock budget for the whole batch: when it elapses, in-flight
    /// decisions abort at their next poll point and not-yet-started ones
    /// abort immediately — completed results are returned as-is, the rest
    /// report Strategy::kDeadlineExceeded (the per-query status).
    int64_t batch_ms = 0;
    /// Per-query wall-clock budget, applied to each decision separately.
    int64_t per_query_ms = 0;
  };

  /// Decides a batch. With threads > 1 the batch is worked by that many
  /// concurrent callers of Decide (answers are positionally aligned with
  /// the input either way).
  std::vector<SemAcResult> DecideBatch(const std::vector<PreparedQuery>& batch,
                                       size_t threads = 1) const;
  /// Batch decision under deadlines: every query gets its own token
  /// chained under one batch-level token, so a batch deadline cancels
  /// stragglers while per-query deadlines bound each decision.
  std::vector<SemAcResult> DecideBatch(const std::vector<PreparedQuery>& batch,
                                       size_t threads,
                                       const BatchDeadlines& deadlines) const;

  /// §8.2 acyclic approximation off prepared state.
  ApproximateOutcome Approximate(const PreparedQuery& q) const;

  /// §8.1 UCQ semantic acyclicity; every disjunct runs off the shared
  /// caches.
  UcqSemAcResult DecideUcq(const UnionQuery& Q) const;

  /// Prop 24 FPT evaluation: reformulate (cached), then Yannakakis over a
  /// view-based join tree of the witness. The default path compiles the
  /// witness into a SemiJoinProgram and runs it over a columnar encoding
  /// of the database (EvalOptions::Path::kColumnar); pass Path::kRow for
  /// the legacy tuple-at-a-time evaluator. Answer sets are identical.
  EvalOutcome Eval(const PreparedQuery& q, const Instance& database) const;
  EvalOutcome Eval(const PreparedQuery& q, const Instance& database,
                   const EvalOptions& opts) const;
  /// Same, over a pre-encoded columnar database (always the columnar
  /// path; `opts.path` is ignored). Encode once with
  /// data::ColumnarInstance::FromInstance/FromFile, evaluate many times.
  EvalOutcome Eval(const PreparedQuery& q,
                   const data::ColumnarInstance& database,
                   const EvalOptions& opts = {}) const;

  /// Point-in-time aggregate of the cache counters (gathers the per-oracle
  /// counters under their locks; safe concurrently with decisions). For
  /// the per-cache byte/eviction introspection see Stats() — mind the
  /// capitalization: stats() is the legacy aggregate surface.
  EngineStats stats() const;

  /// Per-cache introspection: entries, bytes, hit/miss/insert/eviction
  /// counters and configured budgets of all four FingerprintCaches. Safe
  /// concurrently with decisions. Distinct from the legacy lowercase
  /// stats(), which returns the flat EngineStats aggregate.
  EngineCacheStats Stats() const;

  /// Process-lifetime decision metrics (core/obs.h): per-strategy and
  /// per-answer decision counts, per-strategy and per-phase latency
  /// histograms, hot-path counters. Always maintained (no sink needed);
  /// safe concurrently with decisions. JSON round-trips via
  /// MetricsSnapshot::ToJson/FromJson — the payload for the ROADMAP's
  /// future `semacycd /stats` endpoint.
  obs::MetricsSnapshot Metrics() const { return metrics_.Snapshot(); }

  /// Explicit pressure relief: drops every resident cache entry (chase
  /// memo, rewritings, oracles, decisions). Counters survive; the drops
  /// count as evictions. In-flight decisions keep the shared_ptrs they
  /// already hold, so trimming is safe concurrently with Decide.
  void TrimCaches() const;

 private:
  /// A persistent per-query containment oracle. The cache key carries the
  /// query; the entry keeps its own copy because the oracle holds a
  /// reference to it for its lifetime.
  struct OracleEntry {
    ConjunctiveQuery query;
    ContainmentOracle oracle;
    /// `cancel` (may be null) bounds only the construction-time rewriting
    /// build; the oracle never stores it (per-check tokens are passed to
    /// ContainedInQ).
    OracleEntry(ConjunctiveQuery q, const PreparedSchema& schema,
                const SemAcOptions& options, RewriteCache* rewrite_cache,
                CancelToken* cancel = nullptr);
    /// Includes the oracle memo's running footprint, so the post-decision
    /// Reweigh keeps the cache's byte accounting honest as memos grow
    /// (see EngineOptions::oracles).
    size_t ApproxBytes() const;
  };

  /// The cached-decision layer plus the abort protocol: runs
  /// DecideUncached under the decision cache, never caches an aborted
  /// result (including one surfaced from an injected std::bad_alloc), and
  /// on abort erases the cache entries this decision inserted so a later
  /// re-decide sees the same cache state as an engine that never started.
  SemAcResult DecideWithToken(const PreparedQuery& q,
                              CancelToken* cancel) const;
  /// `tracer` is non-null exactly when options_.trace_sink is set; every
  /// instrumentation site guards on it (null = counters only). `cancel`
  /// (may be null) is polled at every phase boundary and threaded into
  /// every unbounded loop beneath; `chase_inserted` / `oracle_inserted`
  /// report which shared-cache entries this call created (abort
  /// rollback).
  SemAcResult DecideUncached(const PreparedQuery& q,
                             obs::DecisionTracer* tracer, CancelToken* cancel,
                             bool* chase_inserted, bool* oracle_inserted) const;
  std::shared_ptr<const QueryChaseResult> ChaseOf(
      const ConjunctiveQuery& q, CancelToken* cancel = nullptr,
      bool* inserted = nullptr) const;
  /// The persistent oracle for q, created on first use. The shared_ptr
  /// keeps the entry alive across a concurrent eviction; with the oracle
  /// cache disabled the entry is transient (computed, served, not stored),
  /// mirroring the free-function path. `built` (optional) reports whether
  /// this call constructed the oracle (observability: attributes the
  /// rewriting's build cost to the decision that paid it). `cancel` (may
  /// be null) bounds the construction; an oracle built under a fired
  /// token is never cached and nullptr is returned. `inserted` reports
  /// whether this call stored a fresh entry (abort rollback).
  std::shared_ptr<const OracleEntry> OracleFor(const PreparedQuery& q,
                                               bool* built = nullptr,
                                               CancelToken* cancel = nullptr,
                                               bool* inserted = nullptr) const;
  /// q1 ⊆Σ q2 through the chase cache (Lemma 1).
  Tri ContainedUnderCached(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2) const;

  /// Folds one parallel witness search's scheduling stats into the
  /// registry. No-op for sequential runs (zero units claimed), so the
  /// sequential counter stream is untouched by the parallel plumbing.
  void AddParallelStats(const WorkStealStats& s) const;

  /// Shared Eval prologue: Decide under `cancel`, extract the witness into
  /// `out` and build its join-tree view. Returns false with out->status
  /// set on any non-Ok outcome.
  bool EvalPrologue(const PreparedQuery& q, CancelToken* cancel,
                    EvalOutcome* out, std::optional<JoinTreeView>* tree) const;

  PreparedSchema schema_;
  SemAcOptions options_;

  mutable QueryChaseCache chase_cache_;
  mutable RewriteCache rewrite_cache_;
  mutable FingerprintCache<OracleEntry, IsoMatch<OracleEntry>> oracles_;
  mutable FingerprintCache<SemAcResult, IsoMatch<SemAcResult>> decisions_;

  mutable std::atomic<size_t> prepares_{0};
  mutable std::atomic<size_t> decisions_count_{0};

  /// Lifetime metrics (atomic counters + latency histograms); last member
  /// so the caches it describes are constructed first.
  mutable obs::MetricsRegistry metrics_;
};

}  // namespace semacyc

#endif  // SEMACYC_SEMACYC_ENGINE_H_
