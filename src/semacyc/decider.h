#ifndef SEMACYC_SEMACYC_DECIDER_H_
#define SEMACYC_SEMACYC_DECIDER_H_

#include <optional>
#include <string>

#include "semacyc/witness_search.h"

namespace semacyc::obs {
class TraceSink;
}  // namespace semacyc::obs

namespace semacyc {

/// Answer of the semantic-acyclicity decision procedure.
enum class SemAcAnswer { kYes, kNo, kUnknown };
const char* ToString(SemAcAnswer a);

/// The pipeline stage that produced an answer (DESIGN.md §3). Replaces the
/// former stringly-typed SemAcResult::strategy; ToString renders the
/// historical names ("already-acyclic", "core", ...).
enum class Strategy {
  kNone,             // no decision was produced (default-constructed result)
  kAlreadyAcyclic,   // q itself meets the target class
  kCore,             // the core of q meets it (also the Σ = ∅ NO argument)
  kFailingChase,     // chase(q, Σ) failed: q is empty under Σ
  kChaseCompaction,  // the chase was acyclic; Lemma 9 compaction
  kImages,           // homomorphic image of q inside the chase
  kSubsets,          // acyclic sub-instance of the chase
  kExhaustive,       // bounded canonical enumeration (YES or definitive NO)
  kBudgetExhausted,  // every strategy ran out: kUnknown
  /// The decision was aborted cooperatively — deadline_ms elapsed, an
  /// external CancelToken fired, or an injected fault hit — before the
  /// pipeline finished. kUnknown with partial evidence (candidates_tested
  /// so far); never cached, and the engine stays fully reusable.
  kDeadlineExceeded,
};
const char* ToString(Strategy s);

/// Configuration of the decision pipeline (see DESIGN.md §3).
struct SemAcOptions {
  /// Chase termination budgets (defaults in chase/tgd_chase.h); raise
  /// when saturation matters more than latency.
  ChaseOptions chase;
  /// UCQ-rewriting budgets (defaults in rewrite/ucq_rewriter.h); raise
  /// on rewritable schemas whose rewriting is cut short.
  RewriteOptions rewrite;
  /// Which stratum of the acyclicity hierarchy witnesses must reach:
  /// kAlpha is the paper's notion; kBeta/kGamma/kBerge demand strictly
  /// tighter witnesses (semantic β-/γ-acyclicity). For targets above
  /// kAlpha a kNo is only emitted on the constraint-free core argument —
  /// the small-query theorems are proven for α-acyclic witnesses only.
  acyclic::AcyclicityClass target_class = acyclic::AcyclicityClass::kAlpha;
  /// Budgets per strategy. Units: image_homs caps the number of
  /// homomorphisms of q into the chase that the images strategy
  /// considers (default 5000); subset_budget and exhaustive_budget cap
  /// DFS node visits of the subsets resp. exhaustive enumerations
  /// (defaults 200k / 300k). Raise for exactness on hard instances,
  /// lower for latency; a hit budget downgrades NO to UNKNOWN, never
  /// flips an answer.
  size_t image_homs = 5000;
  size_t subset_budget = 200000;
  size_t exhaustive_budget = 300000;
  /// Worker threads for the subsets/exhaustive witness searches of ONE
  /// decision (core/worksteal.h). 1 (the default) keeps the sequential
  /// path; N > 1 runs the same ordered search space over N workers with
  /// the deterministic commit protocol, so answers, strategies, budgets
  /// and witnesses are bitwise identical to 1 thread — threads buy
  /// latency, never a different result. Ignored by the legacy tuning.
  size_t decide_threads = 1;
  /// Cap applied on top of the theoretical small-query bound when
  /// enumerating witnesses exhaustively (the theoretical bound for NR/S is
  /// the exponential 2·f_C(q,Σ); enumeration beyond ~8 atoms is hopeless).
  size_t witness_atoms_cap = 8;
  /// Per-strategy switches, all default true; disable individual
  /// strategies only to isolate one in tests/benches (a disabled
  /// strategy can cost exactness, never correctness).
  bool enable_images = true;
  bool enable_subsets = true;
  bool enable_exhaustive = true;
  /// Per-candidate machinery switches for the witness strategies (the
  /// incremental classifier / incremental chase-homomorphism fast paths
  /// vs the legacy reference pipeline). The defaults are the fast
  /// configuration; every switch changes cost only, never answers — see
  /// WitnessTuning in witness_search.h.
  WitnessTuning witness;
  /// Wall-clock deadline per decision in milliseconds (0 = none, the
  /// default). When it elapses, the pipeline aborts at the next poll
  /// point and the result reports Strategy::kDeadlineExceeded with
  /// answer kUnknown — graceful degradation, never an exception or a
  /// torn result. Distinct from the step budgets above: those bound
  /// *work* (deterministic, reproducible), this bounds *time*. Engine::
  /// Approximate and Eval honor it too (Status::Code::kDeadlineExceeded).
  int64_t deadline_ms = 0;
  /// Structured decision tracing (core/obs.h): when non-null, every
  /// decision emits one DecisionTrace (nested phase spans + counters) to
  /// this sink. Null (the default) costs one inlined pointer check per
  /// phase — counters and answers are bit-identical either way (pinned by
  /// obs_test's parity sweep). Not owned; must outlive the decisions.
  obs::TraceSink* trace_sink = nullptr;
};

/// Result of the decision procedure, with a machine-checkable witness.
struct SemAcResult {
  SemAcAnswer answer = SemAcAnswer::kUnknown;
  /// When kYes: an acyclic CQ q' with q ≡Σ q'.
  std::optional<ConjunctiveQuery> witness;
  /// The tightest acyclicity class of the witness body (at least
  /// target_class). Only meaningful when `witness` is set.
  acyclic::AcyclicityClass witness_class = acyclic::AcyclicityClass::kCyclic;
  /// The strategy that produced the answer.
  Strategy strategy = Strategy::kNone;
  /// The small-query bound used (2·|q| for APC classes, 2·f_C(q,Σ) for
  /// UCQ-rewritable classes), before the cap.
  size_t small_query_bound = 0;
  /// Whether `small_query_bound` is backed by one of the paper's theorems
  /// (Props 8/15/22) — when false the bound is the 2·|q| heuristic and a
  /// finished exhaustive search still cannot claim an exact NO. This is
  /// the out-param of SmallQueryBound, surfaced so `exact` is
  /// self-explanatory.
  bool bound_justified = false;
  /// The witness-size bound actually enumerated.
  size_t bound_used = 0;
  /// Whether a kNo answer (or the absence of a witness) is definitive.
  bool exact = false;
  size_t candidates_tested = 0;

  /// Approximate heap footprint (cache byte accounting).
  size_t ApproxBytes() const {
    return sizeof(SemAcResult) +
           (witness.has_value() ? witness->ApproxBytes() : 0);
  }
};

/// Decides whether q is semantically acyclic under Σ.
///
/// The pipeline (DESIGN.md §3): trivial acyclicity, core acyclicity
/// (complete for Σ = ∅), chase-acyclicity with Lemma 9 compaction,
/// homomorphic-image search, acyclic-subset-of-chase search, and finally
/// bounded exhaustive witness enumeration. kYes answers always carry a
/// verified witness; kNo answers are emitted only when the run was exact
/// (saturated chase or complete rewriting, exhaustive search finished
/// within budget and within the theoretical bound).
SemAcResult DecideSemanticAcyclicity(const ConjunctiveQuery& q,
                                     const DependencySet& sigma,
                                     const SemAcOptions& options = {});

/// The paper's small-query bound for (q, Σ): 2·|q| when Σ is guarded or a
/// set of egds (acyclicity-preserving chase classes, Props 8/22), and
/// 2·f_C(q,Σ) for UCQ-rewritable classes (Prop 15). For sets outside the
/// studied classes, falls back to 2·|q| (heuristic, flagged non-exact).
size_t SmallQueryBound(const ConjunctiveQuery& q, const DependencySet& sigma,
                       bool* theoretically_justified = nullptr);

/// Same bound from precomputed Σ facts (the Engine path: the per-schema
/// classification is done once, not per query).
size_t SmallQueryBound(const ConjunctiveQuery& q, const DependencySet& sigma,
                       const SchemaFacts& facts,
                       bool* theoretically_justified = nullptr);

}  // namespace semacyc

#endif  // SEMACYC_SEMACYC_DECIDER_H_
