#ifndef SEMACYC_SEMACYC_COMPACTION_H_
#define SEMACYC_SEMACYC_COMPACTION_H_

#include <optional>

#include "core/hypergraph.h"
#include "core/query.h"

namespace semacyc {

/// The compact acyclic query of Lemma 9 / Figure 3.
struct CompactionResult {
  /// The acyclic witness query; at most 2·|q| atoms; contains a renamed
  /// copy of q's image, so (variabilized) it is plainly contained in q
  /// whenever the image covers q.
  ConjunctiveQuery witness;
  /// The sub-instance J ⊆ I the witness was extracted from.
  Instance sub_instance;
  /// Number of join-tree nodes kept (|J|).
  size_t kept_nodes = 0;
};

/// Lemma 9: given a CQ q, an acyclic instance I (acyclicity over all
/// terms: I is a frozen-query chase) and a tuple c̄ of terms of I such
/// that c̄ ∈ q(I), extracts an acyclic sub-instance J ⊆ I with
/// h(q) ⊆ J and |J| ≤ 2·|q|, and returns it as the query q'(x̄) with
/// q'(c̄) true in I.
///
/// The kept join-tree nodes are: the image of q under a witnessing
/// homomorphism, the roots of the induced subforest, and its branching
/// nodes — at most 2·|q| in total. (The paper's Figure 3 keeps leaves
/// instead of the full image; keeping the image is what makes h(q) ⊆ J
/// literally true, with the same 2·|q| bound, since every leaf of the
/// induced subforest is an image node.)
///
/// Returns std::nullopt when I is cyclic or c̄ ∉ q(I).
std::optional<CompactionResult> CompactAcyclicWitness(
    const ConjunctiveQuery& q, const Instance& acyclic_instance,
    const std::vector<Term>& target_tuple);

}  // namespace semacyc

#endif  // SEMACYC_SEMACYC_COMPACTION_H_
