#ifndef SEMACYC_REWRITE_UCQ_REWRITER_H_
#define SEMACYC_REWRITE_UCQ_REWRITER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "chase/dependency.h"
#include "core/fingerprint_cache.h"
#include "core/interrupt.h"
#include "core/query.h"

namespace semacyc {

/// Options for the backward-chaining UCQ rewriter.
struct RewriteOptions {
  /// Caps; when hit, RewriteResult::complete is false. They exist so that
  /// callers can probe sets outside the UCQ-rewritable classes without
  /// diverging; for NR and (factorized) sticky sets the caps are generous.
  size_t max_disjuncts = 20000;
  size_t max_atoms_per_disjunct = 128;
  size_t max_steps = 2000000;
  /// Enable the factorization step (required for completeness/termination
  /// on sticky sets; harmless elsewhere).
  bool factorize = true;
  /// Cooperative cancellation token polled once per worklist step
  /// (nullptr = not cancellable, the default). A fired token stops the
  /// exploration exactly like an exhausted cap: `complete` comes back
  /// false, so the rewriting is never treated as perfect.
  CancelToken* cancel = nullptr;
};

/// Result of rewriting a CQ into a UCQ (Definition 2).
struct RewriteResult {
  /// The rewriting; its first disjunct is the input query itself.
  UnionQuery ucq;
  /// True when the exploration exhausted every rewriting step within the
  /// caps; only then is the UCQ a *perfect* rewriting and usable for exact
  /// containment answers.
  bool complete = false;
  size_t steps = 0;
  /// Wall time of the rewriting build (observability; a cache-served
  /// rewriting still reports the original build cost).
  int64_t build_ns = 0;

  /// The paper's f_C(q,Σ): the maximal disjunct size (UCQ height).
  size_t Height() const { return ucq.Height(); }

  /// Approximate heap footprint (cache byte accounting).
  size_t ApproxBytes() const { return sizeof(RewriteResult) + ucq.ApproxBytes(); }
};

/// Computes the UCQ rewriting Q of q under Σ (tgds only), XRewrite-style:
/// piece-unification backward steps plus factorization, with isomorphism
/// deduplication. For every CQ q' it then holds (Definition 2) that
/// q' ⊆Σ q iff c(x̄) ∈ Q(D_q'), provided `complete` is true.
RewriteResult RewriteToUcq(const ConjunctiveQuery& q,
                           const std::vector<Tgd>& tgds,
                           const RewriteOptions& options = {});

/// The paper's bound f_NR = f_S = p · (a·|q| + 1)^a on the height of the
/// UCQ rewriting (Propositions 17 and 19); p = #predicates in q and Σ,
/// a = max arity.
size_t PaperRewriteHeightBound(const ConjunctiveQuery& q,
                               const std::vector<Tgd>& tgds);

/// Thread-safe cache of UCQ rewritings for a *fixed* Σ — a
/// FingerprintCache keyed by the canonical fingerprint of q with
/// isomorphism resolution (IsoMatch: a rewriting of q answers
/// containment-in-q' verbatim for every q' isomorphic to q: bound
/// disjunct variables are renamed away by the containment check, and
/// isomorphism preserves the head position-wise). One lives inside each
/// semacyc::Engine so repeated ContainmentOracle constructions for the
/// same query reuse the (possibly exponential) rewriting instead of
/// re-deriving it. The caller must use it with one Σ and one RewriteOptions
/// only — neither participates in the key.
class RewriteCache {
 public:
  RewriteCache() = default;
  explicit RewriteCache(const CacheConfig& config) : cache_(config) {}

  /// Returns the cached rewriting of a query isomorphic to q, or computes
  /// and inserts it. Computation runs outside the lock; a racing insert of
  /// the same query keeps the first entry, so every caller sees one result.
  std::shared_ptr<const RewriteResult> GetOrCompute(
      const ConjunctiveQuery& q, const std::vector<Tgd>& tgds,
      const RewriteOptions& options);

  /// Drops the rewriting stored under exactly q, if resident (abort
  /// rollback; see FingerprintCache::Erase).
  bool Erase(const ConjunctiveQuery& q) {
    return cache_.Erase(CanonicalFingerprint(q), q);
  }

  size_t hits() const { return cache_.hits(); }
  size_t misses() const { return cache_.misses(); }
  CacheStats Stats() const { return cache_.Stats(); }
  void Trim(size_t target_bytes) { cache_.Trim(target_bytes); }

 private:
  FingerprintCache<RewriteResult, IsoMatch<RewriteResult>> cache_;
};

}  // namespace semacyc

#endif  // SEMACYC_REWRITE_UCQ_REWRITER_H_
