#ifndef SEMACYC_REWRITE_UNIFY_H_
#define SEMACYC_REWRITE_UNIFY_H_

#include <optional>

#include "core/query.h"

namespace semacyc {

/// Union-find based term unification. Variables unify with anything;
/// two distinct constants clash. Representatives prefer constants so the
/// final substitution never maps a constant to a variable.
class TermUnification {
 public:
  Term Find(Term t);
  /// Unifies two terms; returns false on a constant-constant clash.
  bool Union(Term a, Term b);
  /// Unifies two atoms argument-wise (predicates must agree).
  bool UnifyAtoms(const Atom& a, const Atom& b);

  /// The accumulated mapping: every term seen so far maps to its class
  /// representative.
  Substitution ToSubstitution();

  /// All terms in the same class as `t` (including `t`).
  std::vector<Term> ClassOf(Term t);

 private:
  std::unordered_map<Term, Term, TermHash> parent_;
  Term Root(Term t);
};

/// Most general unifier of two atoms, as a substitution, if it exists.
std::optional<Substitution> MguOfAtoms(const Atom& a, const Atom& b);

}  // namespace semacyc

#endif  // SEMACYC_REWRITE_UNIFY_H_
