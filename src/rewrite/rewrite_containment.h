#ifndef SEMACYC_REWRITE_REWRITE_CONTAINMENT_H_
#define SEMACYC_REWRITE_REWRITE_CONTAINMENT_H_

#include "chase/query_chase.h"
#include "rewrite/ucq_rewriter.h"

namespace semacyc {

/// Containment via UCQ rewriting (Definition 2): q' ⊆Σ q iff
/// c(x̄') ∈ Q(D_q') for the rewriting Q of q under Σ. Terminating and
/// exact for UCQ-rewritable classes (NR, S, linear); the chase-based
/// procedure of chase/query_chase.h may diverge there instead.
Tri RewriteContained(const ConjunctiveQuery& q_prime,
                     const ConjunctiveQuery& q, const std::vector<Tgd>& tgds,
                     const RewriteOptions& options = {});

/// Same, with a precomputed rewriting of q.
Tri RewriteContained(const ConjunctiveQuery& q_prime,
                     const RewriteResult& rewriting_of_q);

}  // namespace semacyc

#endif  // SEMACYC_REWRITE_REWRITE_CONTAINMENT_H_
