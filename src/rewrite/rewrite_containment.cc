#include "rewrite/rewrite_containment.h"

#include "core/containment.h"

namespace semacyc {

Tri RewriteContained(const ConjunctiveQuery& q_prime,
                     const RewriteResult& rewriting_of_q) {
  if (FrozenQuerySatisfies(q_prime, rewriting_of_q.ucq)) return Tri::kYes;
  return rewriting_of_q.complete ? Tri::kNo : Tri::kUnknown;
}

Tri RewriteContained(const ConjunctiveQuery& q_prime,
                     const ConjunctiveQuery& q, const std::vector<Tgd>& tgds,
                     const RewriteOptions& options) {
  RewriteResult rewriting = RewriteToUcq(q, tgds, options);
  return RewriteContained(q_prime, rewriting);
}

}  // namespace semacyc
