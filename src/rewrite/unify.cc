#include "rewrite/unify.h"

namespace semacyc {

Term TermUnification::Root(Term t) {
  auto it = parent_.find(t);
  if (it == parent_.end()) {
    parent_.emplace(t, t);
    return t;
  }
  // Path compression.
  Term root = it->second;
  if (root == t) return t;
  root = Root(root);
  parent_[t] = root;
  return root;
}

Term TermUnification::Find(Term t) { return Root(t); }

bool TermUnification::Union(Term a, Term b) {
  Term ra = Root(a);
  Term rb = Root(b);
  if (ra == rb) return true;
  if (ra.IsConstant() && rb.IsConstant()) return false;
  // Constants become representatives.
  if (rb.IsConstant()) std::swap(ra, rb);
  parent_[rb] = ra;
  return true;
}

bool TermUnification::UnifyAtoms(const Atom& a, const Atom& b) {
  if (a.predicate() != b.predicate()) return false;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!Union(a.arg(i), b.arg(i))) return false;
  }
  return true;
}

Substitution TermUnification::ToSubstitution() {
  Substitution out;
  for (const auto& [t, _] : parent_) {
    Term r = Root(t);
    if (r != t) out[t] = r;
  }
  return out;
}

std::vector<Term> TermUnification::ClassOf(Term t) {
  Term root = Root(t);
  std::vector<Term> out;
  for (const auto& [term, _] : parent_) {
    if (Root(term) == root) out.push_back(term);
  }
  return out;
}

std::optional<Substitution> MguOfAtoms(const Atom& a, const Atom& b) {
  TermUnification u;
  if (!u.UnifyAtoms(a, b)) return std::nullopt;
  return u.ToSubstitution();
}

}  // namespace semacyc
