#include "rewrite/ucq_rewriter.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "core/canonical.h"
#include "rewrite/unify.h"

namespace semacyc {
namespace {

/// Deduplicating store of CQs modulo isomorphism.
class QueryStore {
 public:
  /// Returns true iff the query was new. Buckets by the hash-interned
  /// canonical form; collisions resolved exactly with AreIsomorphic.
  bool Add(const ConjunctiveQuery& q) {
    auto& bucket = buckets_[CanonicalFingerprint(q)];
    for (int idx : bucket) {
      if (AreIsomorphic(queries_[idx], q)) return false;
    }
    bucket.push_back(static_cast<int>(queries_.size()));
    queries_.push_back(q);
    return true;
  }

  const std::vector<ConjunctiveQuery>& queries() const { return queries_; }

 private:
  std::unordered_map<uint64_t, std::vector<int>> buckets_;
  std::vector<ConjunctiveQuery> queries_;
};

/// One backward rewriting step: tries to resolve the piece `subset` of
/// `p`'s body atoms against the head of `tgd` (already renamed apart).
/// `assignment[k]` maps subset[k] to a head atom index.
std::optional<ConjunctiveQuery> TryRewriteStep(
    const ConjunctiveQuery& p, const std::vector<int>& subset,
    const std::vector<int>& assignment, const Tgd& tgd) {
  TermUnification unify;
  for (size_t k = 0; k < subset.size(); ++k) {
    const Atom& s = p.body()[subset[k]];
    const Atom& h = tgd.head()[assignment[k]];
    if (!unify.UnifyAtoms(s, h)) return std::nullopt;
  }

  // Existential soundness conditions. For each existential variable z of
  // the tgd: every p-term in z's class must be a non-free variable of p
  // occurring only inside the piece; every tgd-term must itself be
  // existential; constants are forbidden.
  std::unordered_set<Term> free_vars;
  for (Term v : p.FreeVariables()) free_vars.insert(v);
  std::unordered_set<int> in_subset(subset.begin(), subset.end());
  std::unordered_set<Term> tgd_existential(
      tgd.existential_variables().begin(), tgd.existential_variables().end());
  std::unordered_set<Term> tgd_vars;
  for (Term v : tgd.body_variables()) tgd_vars.insert(v);
  for (const Atom& h : tgd.head()) {
    for (Term t : h.args()) {
      if (t.IsVariable()) tgd_vars.insert(t);
    }
  }

  for (Term z : tgd.existential_variables()) {
    for (Term member : unify.ClassOf(z)) {
      if (member == z) continue;
      if (member.IsConstant()) return std::nullopt;
      if (tgd_vars.count(member)) {
        // Another tgd variable: must also be existential.
        if (!tgd_existential.count(member)) return std::nullopt;
        continue;
      }
      // A p-variable: not free, and not occurring outside the piece.
      if (free_vars.count(member)) return std::nullopt;
      for (size_t i = 0; i < p.body().size(); ++i) {
        if (in_subset.count(static_cast<int>(i))) continue;
        if (p.body()[i].Mentions(member)) return std::nullopt;
      }
    }
  }

  Substitution gamma = unify.ToSubstitution();
  std::vector<Atom> new_body;
  for (size_t i = 0; i < p.body().size(); ++i) {
    if (in_subset.count(static_cast<int>(i))) continue;
    new_body.push_back(Apply(gamma, p.body()[i]));
  }
  for (const Atom& b : tgd.body()) new_body.push_back(Apply(gamma, b));
  // Deduplicate atoms.
  std::vector<Atom> dedup;
  std::unordered_set<Atom, AtomHash> seen;
  for (Atom& a : new_body) {
    if (seen.insert(a).second) dedup.push_back(std::move(a));
  }
  std::vector<Term> new_head;
  new_head.reserve(p.head().size());
  for (Term h : p.head()) new_head.push_back(Apply(gamma, h));
  return ConjunctiveQuery(std::move(new_head), std::move(dedup));
}

/// Factorization step (XRewrite): merge two body atoms that jointly unify
/// with a single tgd head atom whose existential positions stay private.
/// Sound because the factorized query maps homomorphically into the
/// original; needed for termination/completeness on sticky sets.
std::vector<ConjunctiveQuery> Factorizations(const ConjunctiveQuery& p,
                                             const std::vector<Tgd>& tgds) {
  std::vector<ConjunctiveQuery> out;
  const auto& body = p.body();
  std::unordered_set<Term> free_vars;
  for (Term v : p.FreeVariables()) free_vars.insert(v);
  for (size_t i = 0; i < body.size(); ++i) {
    for (size_t j = i + 1; j < body.size(); ++j) {
      if (body[i].predicate() != body[j].predicate()) continue;
      // The pair must be resolvable against some head atom.
      bool witnessed = false;
      for (const Tgd& tgd : tgds) {
        for (const Atom& h : tgd.head()) {
          if (h.predicate() != body[i].predicate()) continue;
          TermUnification probe;
          if (!probe.UnifyAtoms(body[i], h)) continue;
          if (!probe.UnifyAtoms(body[j], h)) continue;
          witnessed = true;
          break;
        }
        if (witnessed) break;
      }
      if (!witnessed) continue;
      TermUnification unify;
      if (!unify.UnifyAtoms(body[i], body[j])) continue;
      Substitution gamma = unify.ToSubstitution();
      // Avoid collapsing two distinct free variables (would change the
      // answer head shape unsoundly for factorization purposes).
      bool collapses_free = false;
      for (Term v : free_vars) {
        Term image = Apply(gamma, v);
        if (image != v && free_vars.count(image)) {
          collapses_free = true;
          break;
        }
      }
      if (collapses_free) continue;
      std::vector<Atom> new_body;
      std::unordered_set<Atom, AtomHash> seen;
      for (const Atom& a : body) {
        Atom mapped = Apply(gamma, a);
        if (seen.insert(mapped).second) new_body.push_back(std::move(mapped));
      }
      if (new_body.size() >= body.size()) continue;  // no merge happened
      std::vector<Term> new_head;
      for (Term h : p.head()) new_head.push_back(Apply(gamma, h));
      out.emplace_back(std::move(new_head), std::move(new_body));
    }
  }
  return out;
}

}  // namespace

RewriteResult RewriteToUcq(const ConjunctiveQuery& q,
                           const std::vector<Tgd>& tgds,
                           const RewriteOptions& options) {
  auto t0 = std::chrono::steady_clock::now();
  RewriteResult result;
  QueryStore store;
  std::deque<int> worklist;
  store.Add(q);
  worklist.push_back(0);
  bool capped = false;

  while (!worklist.empty()) {
    SEMACYC_FAILPOINT("rewrite.step", options.cancel);
    if (options.max_steps > 0 && result.steps >= options.max_steps) {
      capped = true;
      break;
    }
    if (options.cancel != nullptr && options.cancel->Poll()) {
      capped = true;  // a fired token truncates like an exhausted cap
      break;
    }
    int index = worklist.front();
    worklist.pop_front();
    // Copy: store.queries() may reallocate as we add.
    const ConjunctiveQuery p = store.queries()[index];

    auto push = [&](const ConjunctiveQuery& candidate) {
      if (candidate.size() > options.max_atoms_per_disjunct) {
        capped = true;
        return;
      }
      if (store.queries().size() >= options.max_disjuncts) {
        capped = true;
        return;
      }
      size_t before = store.queries().size();
      if (store.Add(candidate)) {
        worklist.push_back(static_cast<int>(before));
      }
    };

    // Rewriting steps against every tgd.
    for (const Tgd& original : tgds) {
      // Rename the tgd apart from p.
      Substitution rename;
      for (Term v : original.body_variables()) rename[v] = FreshVariable();
      for (Term v : original.existential_variables()) {
        rename[v] = FreshVariable();
      }
      Tgd tgd(Apply(rename, original.body()), Apply(rename, original.head()));

      // Candidate body atoms: predicate occurs in the tgd head.
      std::vector<int> candidates;
      for (size_t i = 0; i < p.body().size(); ++i) {
        for (const Atom& h : tgd.head()) {
          if (h.predicate() == p.body()[i].predicate()) {
            candidates.push_back(static_cast<int>(i));
            break;
          }
        }
      }
      if (candidates.empty()) continue;
      // Enumerate nonempty subsets of candidates (piece candidates). The
      // candidate list is small in practice; cap to 20 to bound the mask.
      const size_t n = std::min<size_t>(candidates.size(), 20);
      for (uint32_t mask = 1; mask < (1u << n); ++mask) {
        std::vector<int> subset;
        for (size_t b = 0; b < n; ++b) {
          if (mask & (1u << b)) subset.push_back(candidates[b]);
        }
        // Enumerate assignments of subset atoms to head atoms (matching
        // predicates), via mixed-radix counting.
        std::vector<std::vector<int>> choices(subset.size());
        bool feasible = true;
        for (size_t k = 0; k < subset.size(); ++k) {
          for (size_t hi = 0; hi < tgd.head().size(); ++hi) {
            if (tgd.head()[hi].predicate() ==
                p.body()[subset[k]].predicate()) {
              choices[k].push_back(static_cast<int>(hi));
            }
          }
          if (choices[k].empty()) feasible = false;
        }
        if (!feasible) continue;
        std::vector<size_t> pick(subset.size(), 0);
        while (true) {
          ++result.steps;
          std::vector<int> assignment(subset.size());
          for (size_t k = 0; k < subset.size(); ++k) {
            assignment[k] = choices[k][pick[k]];
          }
          std::optional<ConjunctiveQuery> rewritten =
              TryRewriteStep(p, subset, assignment, tgd);
          if (rewritten.has_value()) push(*rewritten);
          // Advance mixed-radix counter.
          size_t k = 0;
          while (k < pick.size()) {
            if (++pick[k] < choices[k].size()) break;
            pick[k] = 0;
            ++k;
          }
          if (k == pick.size()) break;
        }
      }
    }

    // Factorization steps.
    if (options.factorize) {
      for (ConjunctiveQuery& f : Factorizations(p, tgds)) {
        ++result.steps;
        push(f);
      }
    }
  }

  result.ucq = UnionQuery(store.queries());
  result.complete = !capped;
  result.build_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  return result;
}

size_t PaperRewriteHeightBound(const ConjunctiveQuery& q,
                               const std::vector<Tgd>& tgds) {
  std::unordered_set<uint32_t> preds;
  int max_arity = 0;
  for (const Atom& a : q.body()) {
    preds.insert(a.predicate().id());
    max_arity = std::max(max_arity, static_cast<int>(a.arity()));
  }
  for (const Tgd& t : tgds) {
    for (const Atom& a : t.body()) {
      preds.insert(a.predicate().id());
      max_arity = std::max(max_arity, static_cast<int>(a.arity()));
    }
    for (const Atom& a : t.head()) {
      preds.insert(a.predicate().id());
      max_arity = std::max(max_arity, static_cast<int>(a.arity()));
    }
  }
  double p = static_cast<double>(preds.size());
  double a = static_cast<double>(max_arity);
  double bound = p * std::pow(a * static_cast<double>(q.size()) + 1.0, a);
  return static_cast<size_t>(bound);
}

std::shared_ptr<const RewriteResult> RewriteCache::GetOrCompute(
    const ConjunctiveQuery& q, const std::vector<Tgd>& tgds,
    const RewriteOptions& options) {
  return cache_.GetOrCompute(q, [&]() -> std::shared_ptr<const RewriteResult> {
    auto computed =
        std::make_shared<const RewriteResult>(RewriteToUcq(q, tgds, options));
    // A rewriting truncated by cancellation must not be memoized: it would
    // permanently downgrade later oracle builds to the inexact path.
    if (options.cancel != nullptr && options.cancel->triggered()) {
      return nullptr;
    }
    return computed;
  });
}

}  // namespace semacyc
