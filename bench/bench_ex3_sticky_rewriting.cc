// E7 — Example 3: the sticky set whose UCQ rewriting height is 2^n.
//
// Demonstrates that f_S cannot be polynomial in the arity: the disjunct
// of the rewriting that mentions only P_n contains exactly 2^n atoms.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "deps/sticky.h"
#include "gen/generators.h"
#include "rewrite/ucq_rewriter.h"

namespace semacyc {
namespace {

void ShapeReport(bench::JsonReport* report) {
  bench::Banner("E7 / Example 3 — exponential UCQ rewriting height",
                "every UCQ rewriting of P0(0,..,0,0,1) under the n-rule "
                "sticky set has a disjunct with exactly 2^n atoms");
  bench::Table table({"n", "sticky?", "disjuncts", "height", "expected 2^n",
                      "paper bound f_S"});
  for (int n : {1, 2, 3}) {
    StickyBlowupWorkload w = MakeStickyBlowupWorkload(n);
    RewriteResult result = RewriteToUcq(w.q, w.sigma.tgds);
    table.AddRow({std::to_string(n),
                  IsSticky(w.sigma.tgds) ? "yes" : "NO",
                  std::to_string(result.ucq.size()),
                  std::to_string(result.Height()),
                  std::to_string(1u << n),
                  std::to_string(PaperRewriteHeightBound(w.q, w.sigma.tgds))});
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: measured height doubles with n (2, 4, 8 = 2^n) and\n"
      "stays below the paper's f_S = p(a|q|+1)^a bound — Example 3's\n"
      "exponential lower bound and Prop 19's upper bound, together.\n");
}

void BM_StickyBlowupRewriting(benchmark::State& state) {
  StickyBlowupWorkload w =
      MakeStickyBlowupWorkload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RewriteToUcq(w.q, w.sigma.tgds).ucq.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StickyBlowupRewriting)->DenseRange(1, 3)->Complexity();

void BM_LinearChainRewriting(benchmark::State& state) {
  // Contrast: a linear chain rewrites with height |q| (no blowup).
  std::string text;
  for (long i = 0; i < state.range(0); ++i) {
    text += "Lr" + std::to_string(i) + "(x,y) -> Lr" + std::to_string(i + 1) +
            "(x,y).\n";
  }
  DependencySet sigma = MustParseDependencySet(text);
  ConjunctiveQuery q =
      MustParseQuery("Lr" + std::to_string(state.range(0)) + "(u,v)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RewriteToUcq(q, sigma.tgds).ucq.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LinearChainRewriting)->RangeMultiplier(2)->Range(2, 16)->Complexity();

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "ex3_sticky_rewriting");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
