// E13 — §8.2: acyclic approximations.
//
// For queries that are NOT semantically acyclic, a maximally contained
// acyclic under-approximation still exists; computing and evaluating it
// yields "quick" sound answers. We measure approximation quality (answer
// recall vs the exact query) and cost on triangle-plus-path families.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "eval/yannakakis.h"
#include "gen/generators.h"
#include "semacyc/approximation.h"

namespace semacyc {
namespace {

/// Triangle with a pendant path of length k: cyclic core, approximations
/// can keep the path but must drop the triangle.
ConjunctiveQuery TriangleWithTail(int k) {
  std::string body = "E(x0,x1), E(x1,x2), E(x2,x0)";
  for (int i = 0; i < k; ++i) {
    body += ", E(x" + std::to_string(i == 0 ? 0 : i + 2) + ",x" +
            std::to_string(i + 3) + ")";
  }
  return MustParseQuery(body);
}

void ShapeReport(bench::JsonReport* report) {
  bench::Banner("E13 / §8.2 — acyclic approximations",
                "an acyclic q' maximally contained in q under Σ always "
                "exists (constant-free q); it under-approximates q's "
                "answers on every database");
  bench::Table table(
      {"query", "semAc?", "|approx|", "approx acyclic?", "sound?"});
  Generator gen(17);
  DependencySet empty;
  SemAcOptions options;
  options.subset_budget = 5000;   // approximation quality saturates early
  options.exhaustive_budget = 5000;
  struct Case {
    std::string name;
    ConjunctiveQuery q;
  };
  std::vector<Case> cases;
  cases.push_back({"triangle", gen.CycleQuery(3)});
  cases.push_back({"triangle+tail2", TriangleWithTail(2)});
  cases.push_back({"C5", gen.CycleQuery(5)});
  cases.push_back({"diamond (semAc)",
                   MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)")});
  Instance db = gen.RandomDatabase({Predicate::Get("E", 2)}, 40, 10);
  for (const Case& c : cases) {
    auto result = AcyclicApproximation(c.q, empty, options);
    if (!result.has_value()) continue;
    // Soundness on a random database: approx answers ⊆ exact answers
    // (Boolean here: approx true implies q true is NOT required — the
    // containment is approx ⊆Σ q, so approx true => q true).
    bool approx_true = EvaluatesTrue(result->approximation, db);
    bool q_true = EvaluatesTrue(c.q, db);
    bool sound = !approx_true || q_true;
    table.AddRow({c.name, result->is_exact ? "yes" : "no",
                  std::to_string(result->approximation.size()),
                  IsAcyclic(result->approximation) ? "yes" : "NO",
                  sound ? "yes" : "NO"});
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: approximations are always acyclic and sound (never\n"
      "true where the exact query is false); semantically acyclic inputs\n"
      "get exact reformulations.\n");
}

void BM_Approximation(benchmark::State& state) {
  ConjunctiveQuery q = TriangleWithTail(static_cast<int>(state.range(0)));
  DependencySet empty;
  SemAcOptions options;
  options.subset_budget = 5000;
  options.exhaustive_budget = 5000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AcyclicApproximation(q, empty, options).has_value());
  }
}
BENCHMARK(BM_Approximation)->DenseRange(0, 2);

void BM_ApproximateVsExactEvaluation(benchmark::State& state) {
  Generator gen(19);
  ConjunctiveQuery q = TriangleWithTail(2);
  DependencySet empty;
  SemAcOptions approx_options;
  approx_options.subset_budget = 5000;
  approx_options.exhaustive_budget = 5000;
  auto approx = AcyclicApproximation(q, empty, approx_options);
  Instance db = gen.RandomDatabase({Predicate::Get("E", 2)},
                                   static_cast<int>(state.range(0)), 24);
  bool exact_mode = state.range(1) == 1;
  for (auto _ : state) {
    if (exact_mode) {
      benchmark::DoNotOptimize(EvaluatesTrue(q, db));
    } else {
      benchmark::DoNotOptimize(
          EvaluateAcyclicBoolean(approx->approximation, db));
    }
  }
}
BENCHMARK(BM_ApproximateVsExactEvaluation)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "approximation");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
