// The incremental candidate pipeline vs the seed (pre-incremental) one.
//
// Claims demonstrated:
//  1. The incremental candidate pipeline (push/pop classification with
//     hereditary pruning, fingerprint dedup, prefiltering/memoizing
//     oracle) beats the legacy per-candidate pipeline (from-scratch
//     hypergraph classification, string keys, uncached containment) by
//     >= 5x at identical budgets on every subsets workload. Exhaustive
//     rows are reported as ungated context: their cost is the per-atom
//     chase homomorphism both pipelines share, so the pipeline win there
//     is a smaller constant (1.3-2x here).
//  2. The incremental chase-homomorphism checker (core/incremental_hom:
//     per-variable candidate domains, forward checking, witness
//     extension/repair along the DFS path) beats the per-push full
//     FindHomomorphisms re-search >= 2x on every exhaustive workload at
//     identical budgets, with bitwise-identical outcomes (answers,
//     witnesses, candidates tested, exhaustion) — it is an exact
//     replacement, so the search trees coincide node for node.
//  3. The worklist γ decider replaces the round-based fixpoint's
//     O(depth) full rescans: single-digit milliseconds on 5k-atom Berge
//     trees where the rounds version needs tens of milliseconds.
//
// Self-timed (no google-benchmark dependency); pass --json to emit
// BENCH_witness_pipeline.json via bench_util's JsonReport.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "acyclic/gamma.h"
#include "bench_util.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/witness_search.h"

namespace semacyc {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Best-of-`reps` wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    fn();
    double ms = MillisSince(start);
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

enum class Kind { kSubsets, kExhaustive };

struct Workload {
  std::string name;
  Kind kind;
  ConjunctiveQuery q;
  DependencySet sigma;
  acyclic::AcyclicityClass target;
  size_t max_atoms;
  size_t budget;
  /// Rows where per-candidate classification dominates carry the >= 5x
  /// per-row gate (the subsets strategy). Exhaustive rows are ungated
  /// context in the legacy-vs-fast showdown (their remaining shared cost
  /// is the containment oracle); the incremental-vs-full homomorphism
  /// comparison they ARE gated on lives in HomShowdown (>= 2x per row).
  bool gated = true;
};

/// The decider's NO-input regime: cyclic cores where no candidate is a
/// witness and the strategies sweep their whole space. Budgets are set
/// above the space size so BOTH pipelines exhaust it — then the oracle
/// answers the identical distinct-candidate set on each side and the
/// measured gap is the per-visit pipeline cost (plus hereditary pruning,
/// which skips subtrees that can never produce a candidate). Cliques give
/// the chase dense cyclic substructure (every triangle is a β- and
/// γ-violation, every repeated vertex pair a Berge one) so pruning has
/// real work to cut; the 4-variable heads exercise the required-term
/// coverage path that dominates realistic non-Boolean searches.
std::vector<Workload> Workloads() {
  Generator gen(3);
  DependencySet copy = MustParseDependencySet("E(x,y) -> F(x,y).");
  DependencySet chain =
      MustParseDependencySet("E(x,y) -> F(x,y). F(x,y) -> G(x,y).");
  // Head = four spread-out query variables: candidates must cover all
  // four, which most small subsets fail.
  auto spread_head = [](const ConjunctiveQuery& q, size_t stride) {
    std::vector<Term> head;
    for (size_t i = 0; i < 4; ++i) head.push_back(q.body()[i * stride].arg(0));
    return ConjunctiveQuery(head, q.body());
  };
  // CycleQuery body i starts at x_i; CliqueQuery on n vertices emits n-1
  // atoms per source vertex, so stride n-1 walks the distinct sources.
  ConjunctiveQuery c8 = spread_head(gen.CycleQuery(8), 2);
  ConjunctiveQuery k5 = spread_head(gen.CliqueQuery(5), 4);
  ConjunctiveQuery k4 = spread_head(gen.CliqueQuery(4), 3);
  // Boolean K4: isomorphism dedup collapses the clique's symmetric
  // subsets, keeping the (pipeline-identical) oracle share small.
  ConjunctiveQuery k4bool({}, gen.CliqueQuery(4).body());
  std::vector<Workload> out;
  out.push_back({"subsets-alpha-c8", Kind::kSubsets, c8, chain,
                 acyclic::AcyclicityClass::kAlpha, 5, 1u << 30});
  out.push_back({"subsets-beta-k4", Kind::kSubsets, k4bool, copy,
                 acyclic::AcyclicityClass::kBeta, 6, 1u << 30});
  out.push_back({"subsets-gamma-k4", Kind::kSubsets, k4bool, copy,
                 acyclic::AcyclicityClass::kGamma, 6, 1u << 30});
  out.push_back({"subsets-berge-k5", Kind::kSubsets, k5, copy,
                 acyclic::AcyclicityClass::kBerge, 5, 1u << 30});
  // Exhaustive rows: ungated context here (the remaining shared cost is
  // the containment oracle); HomShowdown runs the same four workloads
  // with the >= 2x incremental-vs-full homomorphism gate.
  ConjunctiveQuery c6b = gen.CycleQuery(6);
  out.push_back({"exhaustive-alpha-c6", Kind::kExhaustive, c6b, chain,
                 acyclic::AcyclicityClass::kAlpha, 4, 1u << 30, false});
  out.push_back({"exhaustive-beta-k4", Kind::kExhaustive, k4bool, copy,
                 acyclic::AcyclicityClass::kBeta, 4, 1u << 30, false});
  out.push_back({"exhaustive-berge-k4", Kind::kExhaustive, k4bool, copy,
                 acyclic::AcyclicityClass::kBerge, 4, 1u << 30, false});
  out.push_back({"exhaustive-alpha-k4", Kind::kExhaustive, k4, copy,
                 acyclic::AcyclicityClass::kAlpha, 4, 1u << 30, false});
  return out;
}

struct StrategyRun {
  double ms = 0;
  size_t candidates = 0;
  size_t hits = 0;
  size_t prefiltered = 0;
  Tri answer = Tri::kUnknown;
};

StrategyRun RunPipeline(const Workload& w, bool legacy) {
  ChaseOptions chase_options;
  RewriteOptions rewrite_options;
  QueryChaseResult chase = ChaseQuery(w.q, w.sigma, chase_options);
  ContainmentOracle oracle(w.q, w.sigma, chase_options, rewrite_options,
                           /*try_rewriting=*/true, /*memoize=*/!legacy);
  WitnessTuning tuning;
  tuning.legacy = legacy;
  StrategyRun run;
  WitnessSearchOutcome outcome;
  run.ms = TimeMs(1, [&] {
    outcome = w.kind == Kind::kSubsets
                  ? FindWitnessInChaseSubsets(w.q, chase, oracle, w.max_atoms,
                                              w.budget, w.target, tuning)
                  : ExhaustiveWitnessSearch(w.q, w.sigma, chase, oracle,
                                            w.max_atoms, w.budget, w.target,
                                            tuning);
  });
  run.candidates = outcome.candidates_tested;
  run.hits = oracle.cache_hits();
  run.prefiltered = oracle.prefiltered();
  run.answer = outcome.answer;
  return run;
}

void WitnessShowdown(bench::JsonReport* report) {
  bench::Banner(
      "E-P1 - incremental candidate pipeline vs legacy, identical budgets",
      "per-candidate chase/classification dominate witness search; "
      "push/pop classification, hereditary pruning and a memoized "
      "containment oracle cut it >= 5x");
  bench::Table table({"workload", "legacy ms", "fast ms", "speedup",
                      "legacy cand", "fast cand", "prefiltered", "agree"});
  auto emit = [&](const Workload& w, const StrategyRun& legacy,
                  const StrategyRun& fast) {
    double speedup = legacy.ms / fast.ms;
    bool agree = legacy.answer == fast.answer;
    table.AddRow({w.name, std::to_string(legacy.ms), std::to_string(fast.ms),
                  std::to_string(speedup), std::to_string(legacy.candidates),
                  std::to_string(fast.candidates),
                  std::to_string(fast.prefiltered), agree ? "yes" : "NO"});
    report->AddRow("witness",
                   {{"workload", bench::JsonReport::Str(w.name)},
                    {"legacy_ms", bench::JsonReport::Num(legacy.ms)},
                    {"fast_ms", bench::JsonReport::Num(fast.ms)},
                    {"speedup", bench::JsonReport::Num(speedup)},
                    {"budget", bench::JsonReport::Num(
                                   static_cast<double>(w.budget))},
                    {"legacy_candidates",
                     bench::JsonReport::Num(
                         static_cast<double>(legacy.candidates))},
                    {"fast_candidates", bench::JsonReport::Num(
                                            static_cast<double>(fast.candidates))},
                    {"cache_hits",
                     bench::JsonReport::Num(static_cast<double>(fast.hits))},
                    {"prefiltered", bench::JsonReport::Num(
                                        static_cast<double>(fast.prefiltered))},
                    {"gated", w.gated ? "true" : "false"},
                    {"agree", agree ? "true" : "false"}});
    if (w.gated && speedup < 5.0) {
      std::printf("*** speedup target missed on %s: %.1fx < 5x\n",
                  w.name.c_str(), speedup);
    }
  };

  double legacy_total = 0;
  double fast_total = 0;
  for (const Workload& w : Workloads()) {
    StrategyRun legacy = RunPipeline(w, true);
    StrategyRun fast = RunPipeline(w, false);
    legacy_total += legacy.ms;
    fast_total += fast.ms;
    emit(w, legacy, fast);
  }
  table.Print();
  // Context only (per-row gates carry the claim): the wall-clock total is
  // weighted by whichever row happens to be largest.
  double aggregate = legacy_total / fast_total;
  std::printf("total wall clock across all workloads: %.1fx\n", aggregate);
  report->AddRow("witness_aggregate",
                 {{"legacy_ms", bench::JsonReport::Num(legacy_total)},
                  {"fast_ms", bench::JsonReport::Num(fast_total)},
                  {"speedup", bench::JsonReport::Num(aggregate)}});
}

/// One exhaustive run at a given hom configuration, witness included so
/// parity can compare outcomes field by field.
struct HomRun {
  double ms = 0;
  WitnessSearchOutcome outcome;
};

HomRun RunExhaustive(const Workload& w, bool incremental_hom) {
  ChaseOptions chase_options;
  RewriteOptions rewrite_options;
  QueryChaseResult chase = ChaseQuery(w.q, w.sigma, chase_options);
  ContainmentOracle oracle(w.q, w.sigma, chase_options, rewrite_options,
                           /*try_rewriting=*/true, /*memoize=*/true);
  WitnessTuning tuning;
  tuning.incremental_hom = incremental_hom;
  HomRun run;
  // Best-of-3: the small rows finish in single-digit milliseconds, where
  // one-shot timing is noise-bound. Identical reps on both sides.
  run.ms = TimeMs(3, [&] {
    run.outcome = ExhaustiveWitnessSearch(w.q, w.sigma, chase, oracle,
                                          w.max_atoms, w.budget, w.target,
                                          tuning);
  });
  return run;
}

void HomShowdown(bench::JsonReport* report) {
  bench::Banner(
      "E-P3 - incremental vs full chase homomorphism, identical budgets",
      "the exhaustive enumerator re-ran FindHomomorphisms from scratch on "
      "every pushed atom; core/incremental_hom maintains candidate domains "
      "+ a witness along the DFS path instead (forward checking, witness "
      "extension, domain-guided repair) — exact, so outcomes are "
      "bitwise-identical and the win is pure per-push cost: >= 2x per row");
  bench::Table table({"workload", "full ms", "inc ms", "speedup", "cand",
                      "answer", "parity"});
  for (const Workload& w : Workloads()) {
    if (w.kind != Kind::kExhaustive) continue;
    HomRun full = RunExhaustive(w, /*incremental_hom=*/false);
    HomRun inc = RunExhaustive(w, /*incremental_hom=*/true);
    double speedup = full.ms / inc.ms;
    // The incremental checker is an exact replacement: answers, witnesses,
    // candidate counts and exhaustion flags must all coincide — the
    // parity column is the row's correctness claim.
    bool parity =
        full.outcome.answer == inc.outcome.answer &&
        full.outcome.candidates_tested == inc.outcome.candidates_tested &&
        full.outcome.exhausted == inc.outcome.exhausted &&
        full.outcome.witness.has_value() == inc.outcome.witness.has_value() &&
        (!full.outcome.witness.has_value() ||
         *full.outcome.witness == *inc.outcome.witness);
    table.AddRow({w.name, std::to_string(full.ms), std::to_string(inc.ms),
                  std::to_string(speedup),
                  std::to_string(inc.outcome.candidates_tested),
                  std::string(ToString(inc.outcome.answer)),
                  parity ? "identical" : "MISMATCH"});
    report->AddRow(
        "hom",
        {{"workload", bench::JsonReport::Str(w.name)},
         {"full_ms", bench::JsonReport::Num(full.ms)},
         {"inc_ms", bench::JsonReport::Num(inc.ms)},
         {"speedup", bench::JsonReport::Num(speedup)},
         {"budget", bench::JsonReport::Num(static_cast<double>(w.budget))},
         {"candidates", bench::JsonReport::Num(static_cast<double>(
                            inc.outcome.candidates_tested))},
         {"parity", parity ? "true" : "false"}});
    if (speedup < 2.0) {
      std::printf("*** hom speedup target missed on %s: %.1fx < 2x\n",
                  w.name.c_str(), speedup);
    }
    if (!parity) {
      std::printf("*** hom outcome parity BROKEN on %s\n", w.name.c_str());
    }
  }
  table.Print();
}

/// One exhaustive run at a thread count; threads <= 1 is the sequential
/// reference strategy, threads > 1 the work-stealing pool. The oracle is
/// built `synchronized` so concurrent workers may share it (the
/// sequential run pays the same — uncontended — locks, keeping the
/// comparison honest).
HomRun RunParallel(const Workload& w, size_t threads) {
  ChaseOptions chase_options;
  RewriteOptions rewrite_options;
  QueryChaseResult chase = ChaseQuery(w.q, w.sigma, chase_options);
  ContainmentOracle oracle(w.q, w.sigma, chase_options, rewrite_options,
                           SchemaFacts::Compute(w.sigma),
                           /*rewrite_cache=*/nullptr, /*try_rewriting=*/true,
                           /*memoize=*/true, /*synchronized=*/true);
  WitnessTuning tuning;
  HomRun run;
  run.ms = TimeMs(3, [&] {
    run.outcome =
        threads <= 1
            ? ExhaustiveWitnessSearch(w.q, w.sigma, chase, oracle,
                                      w.max_atoms, w.budget, w.target, tuning)
            : ParallelExhaustiveWitnessSearch(w.q, w.sigma, chase, oracle,
                                              w.max_atoms, w.budget, threads,
                                              w.target, tuning);
  });
  return run;
}

/// The work-stealing pool vs the sequential exhaustive strategy at
/// identical budgets. Parity is the correctness claim on EVERY row
/// (bitwise: answer, candidates, visits, exhaustion, the witness itself);
/// the >= 2x speedup claim at 4 threads is gated on the exhaustive-alpha
/// rows, and — under --gate — only enforced when the host actually has 4
/// cores (the parity half of the gate runs regardless). Returns the
/// number of gate violations (0 when not gating).
int ParallelShowdown(bench::JsonReport* report, bool gate) {
  bench::Banner(
      "E-P4 - work-stealing parallel Decide vs sequential, identical budgets",
      "idle workers steal subtree roots of the exhaustive DFS and replay "
      "their incremental sessions to the stolen prefix; the ordered commit "
      "protocol keeps every outcome bitwise-sequential, so threads buy "
      "latency only — target >= 2x at 4 threads on the alpha rows");
  unsigned hw = std::thread::hardware_concurrency();
  bool enforce_speedup = gate && hw >= 4;
  if (gate && !enforce_speedup) {
    std::printf("note: %u hardware threads < 4 — parity gated, speedup "
                "reported only\n", hw);
  }
  int failures = 0;
  bench::Table table({"workload", "1t ms", "2t ms", "4t ms", "x2", "x4",
                      "steals", "waste", "parity"});
  for (const Workload& w : Workloads()) {
    if (w.kind != Kind::kExhaustive) continue;
    HomRun seq = RunParallel(w, 1);
    HomRun p2 = RunParallel(w, 2);
    HomRun p4 = RunParallel(w, 4);
    double x2 = seq.ms / p2.ms;
    double x4 = seq.ms / p4.ms;
    auto bitwise = [&](const WitnessSearchOutcome& p) {
      return seq.outcome.answer == p.answer &&
             seq.outcome.candidates_tested == p.candidates_tested &&
             seq.outcome.visits == p.visits &&
             seq.outcome.exhausted == p.exhausted &&
             seq.outcome.witness.has_value() == p.witness.has_value() &&
             (!seq.outcome.witness.has_value() ||
              *seq.outcome.witness == *p.witness);
    };
    bool parity = bitwise(p2.outcome) && bitwise(p4.outcome);
    // Speedup is gated on the alpha rows only: the beta/berge rows bottom
    // out in a handful of milliseconds where thread startup dominates.
    bool gated = w.name.rfind("exhaustive-alpha", 0) == 0;
    table.AddRow({w.name, std::to_string(seq.ms), std::to_string(p2.ms),
                  std::to_string(p4.ms), std::to_string(x2),
                  std::to_string(x4),
                  std::to_string(p4.outcome.parallel.steals),
                  std::to_string(p4.outcome.parallel.wasted_visits),
                  parity ? "identical" : "MISMATCH"});
    report->AddRow(
        "parallel",
        {{"workload", bench::JsonReport::Str(w.name)},
         {"seq_ms", bench::JsonReport::Num(seq.ms)},
         {"p2_ms", bench::JsonReport::Num(p2.ms)},
         {"p4_ms", bench::JsonReport::Num(p4.ms)},
         {"speedup2", bench::JsonReport::Num(x2)},
         {"speedup4", bench::JsonReport::Num(x4)},
         {"units", bench::JsonReport::Num(static_cast<double>(
                       p4.outcome.parallel.units_claimed))},
         {"steals", bench::JsonReport::Num(
                        static_cast<double>(p4.outcome.parallel.steals))},
         {"replays", bench::JsonReport::Num(
                         static_cast<double>(p4.outcome.parallel.replays))},
         {"wasted_visits",
          bench::JsonReport::Num(
              static_cast<double>(p4.outcome.parallel.wasted_visits))},
         {"gated", gated ? "true" : "false"},
         {"parity", parity ? "true" : "false"}});
    if (!parity) {
      std::printf("*** parallel outcome parity BROKEN on %s\n",
                  w.name.c_str());
      if (gate) ++failures;
    }
    if (gated && x4 < 2.0) {
      std::printf("*** parallel speedup target missed on %s: %.1fx < 2x at "
                  "4 threads\n", w.name.c_str(), x4);
      if (enforce_speedup) ++failures;
    }
  }
  table.Print();
  return failures;
}

void GammaShowdown(bench::JsonReport* report) {
  bench::Banner(
      "E-P2 - worklist gamma decider vs round-based fixpoint",
      "the rounds version pays a full five-rule sweep per peel depth; "
      "the worklist re-examines an object only when an incident event "
      "can change its status");
  bench::Table table(
      {"family", "atoms", "rounds ms", "worklist ms", "speedup", "agree"});
  Generator gen(7);

  auto run = [&](const std::string& family, const acyclic::Hypergraph& hg) {
    bool rounds_acyclic = false;
    bool worklist_acyclic = false;
    double rounds_ms =
        TimeMs(3, [&] { rounds_acyclic = DecideGammaRounds(hg).gamma_acyclic; });
    double worklist_ms =
        TimeMs(3, [&] { worklist_acyclic = DecideGamma(hg).gamma_acyclic; });
    double speedup = rounds_ms / worklist_ms;
    bool agree = rounds_acyclic == worklist_acyclic;
    table.AddRow({family, std::to_string(hg.NumEdges()),
                  std::to_string(rounds_ms), std::to_string(worklist_ms),
                  std::to_string(speedup), agree ? "yes" : "NO"});
    report->AddRow("gamma",
                   {{"family", bench::JsonReport::Str(family)},
                    {"atoms", bench::JsonReport::Num(
                                  static_cast<double>(hg.NumEdges()))},
                    {"rounds_ms", bench::JsonReport::Num(rounds_ms)},
                    {"worklist_ms", bench::JsonReport::Num(worklist_ms)},
                    {"speedup", bench::JsonReport::Num(speedup)},
                    {"agree", agree ? "true" : "false"}});
    if (family.rfind("berge-tree", 0) == 0 && worklist_ms >= 10.0) {
      std::printf("*** worklist gamma not single-digit ms on %s: %.1f ms\n",
                  family.c_str(), worklist_ms);
    }
  };

  for (int scale : {1000, 5000}) {
    ConjunctiveQuery q = gen.BergeTreeQuery(scale);
    run("berge-tree-" + std::to_string(scale),
        ToAcyclicHypergraph(
            Hypergraph::FromAtoms(q.body(), ConnectingTerms::kVariables)));
  }
  {
    // Worst case for the rounds version: a single path peels one leaf
    // pair per round, so rounds == depth == m/2.
    acyclic::Hypergraph path;
    for (int i = 0; i < 5000; ++i) path.AddEdge({i, i + 1});
    run("path-5000", path);
  }
  table.Print();
}

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }
  semacyc::bench::JsonReport report(argc, argv, "witness_pipeline");
  semacyc::WitnessShowdown(&report);
  semacyc::HomShowdown(&report);
  int failures = semacyc::ParallelShowdown(&report, gate);
  semacyc::GammaShowdown(&report);
  return failures > 0 ? 1 : 0;
}
