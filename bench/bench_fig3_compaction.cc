// E3 — Figure 3 / Lemma 9: the compact acyclic query.
//
// Measures the Lemma 9 extraction on random acyclic instances: the
// witness always stays within 2·|q| atoms regardless of how large the
// instance is — the paper's small-query-property engine.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/containment.h"
#include "core/hypergraph.h"
#include "gen/generators.h"
#include "semacyc/compaction.h"

namespace semacyc {
namespace {

struct Sample {
  Instance instance;
  ConjunctiveQuery q;
};

/// A random acyclic instance (frozen random join tree) plus a query taken
/// from a connected fragment of it.
Sample MakeSample(uint64_t seed, int instance_atoms, int query_atoms) {
  Generator gen(seed);
  ConjunctiveQuery shape =
      gen.RandomAcyclicQuery(instance_atoms, 2, 2, "C");
  FrozenQuery frozen = Freeze(shape, TermKind::kNull);
  std::vector<Atom> sub(shape.body().begin(),
                        shape.body().begin() +
                            std::min<size_t>(static_cast<size_t>(query_atoms),
                                             shape.body().size()));
  return {frozen.instance, ConjunctiveQuery({}, sub)};
}

void ShapeReport(bench::JsonReport* report) {
  bench::Banner("E3 / Figure 3 + Lemma 9 — compact acyclic query",
                "a witness of size <= 2|q| exists inside any acyclic "
                "instance I with q(c̄) true, independent of |I|");
  bench::Table table({"|I|", "|q|", "|witness|", "bound 2|q|", "acyclic?",
                      "witness ⊆ q?"});
  for (int instance_atoms : {20, 40, 80, 160}) {
    for (int query_atoms : {3, 6, 9}) {
      Sample s = MakeSample(
          static_cast<uint64_t>(instance_atoms * 131 + query_atoms),
          instance_atoms, query_atoms);
      auto result = CompactAcyclicWitness(s.q, s.instance, {});
      if (!result.has_value()) continue;
      table.AddRow({std::to_string(s.instance.size()),
                    std::to_string(s.q.size()),
                    std::to_string(result->witness.size()),
                    std::to_string(2 * s.q.size()),
                    IsAcyclic(result->witness) ? "yes" : "NO",
                    ContainedInClassic(result->witness, s.q) ? "yes" : "NO"});
    }
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: |witness| <= 2|q| on every row while |I| grows 8x —\n"
      "the Lemma 9 bound is instance-size independent.\n");
}

void BM_Compaction(benchmark::State& state) {
  Sample s = MakeSample(7, static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompactAcyclicWitness(s.q, s.instance, {}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Compaction)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_JoinTreeConstruction(benchmark::State& state) {
  Sample s = MakeSample(9, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildJoinTree(s.instance.atoms(), ConnectingTerms::kAllTerms));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_JoinTreeConstruction)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity();

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "fig3_compaction");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
