// Cancellation overhead and deadline tightness for the interrupt
// subsystem (core/interrupt.h).
//
// Claims demonstrated:
//  1. Poll overhead: arming a deadline that never fires (10 minutes out)
//     costs <= 2% over the same decision with no deadline at all, on the
//     exhaustive E-P3 rows. Poll sites are one relaxed atomic load on
//     the hot path and a clock read every kPollStride calls, and with
//     failpoints compiled in but unarmed each site adds one more relaxed
//     load — all of it fits inside the gate.
//  2. Outcome parity: answers, candidate counts and witnesses are
//     identical with and without the armed-but-unfired deadline —
//     cancellation machinery never changes results.
//  3. Deadline tightness: a decision whose budgets would run for minutes
//     returns within deadline * 1.1 + 5ms once deadline_ms is set, and
//     reports strategy deadline-exceeded.
//
// `--gate` exits non-zero when a gated row misses its bound (CI wires
// this into the tier-1 job). Self-timed; pass --json to emit
// BENCH_interrupt_overhead.json via bench_util's JsonReport.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The exhaustive E-P3 rows of bench_witness_pipeline / bench_obs_overhead:
/// cyclic cores in the NO-input regime, budgets above the space size, so
/// every rep sweeps the identical candidate space through every poll site.
struct Workload {
  std::string name;
  ConjunctiveQuery q;
  DependencySet sigma;
  acyclic::AcyclicityClass target;
  size_t max_atoms;
  size_t budget;
};

std::vector<Workload> Workloads() {
  Generator gen(3);
  DependencySet copy = MustParseDependencySet("E(x,y) -> F(x,y).");
  DependencySet chain =
      MustParseDependencySet("E(x,y) -> F(x,y). F(x,y) -> G(x,y).");
  auto spread_head = [](const ConjunctiveQuery& q, size_t stride) {
    std::vector<Term> head;
    for (size_t i = 0; i < 4; ++i) head.push_back(q.body()[i * stride].arg(0));
    return ConjunctiveQuery(head, q.body());
  };
  ConjunctiveQuery k4bool({}, gen.CliqueQuery(4).body());
  ConjunctiveQuery k4 = spread_head(gen.CliqueQuery(4), 3);
  ConjunctiveQuery c6 = gen.CycleQuery(6);
  std::vector<Workload> out;
  out.push_back({"exhaustive-alpha-c6", c6, chain,
                 acyclic::AcyclicityClass::kAlpha, 4, 1u << 30});
  out.push_back({"exhaustive-beta-k4", k4bool, copy,
                 acyclic::AcyclicityClass::kBeta, 4, 1u << 30});
  out.push_back({"exhaustive-alpha-k4", k4, copy,
                 acyclic::AcyclicityClass::kAlpha, 4, 1u << 30});
  return out;
}

SemAcOptions PipelineOptions(const Workload& w, int64_t deadline_ms) {
  SemAcOptions options;
  options.target_class = w.target;
  options.witness_atoms_cap = w.max_atoms;
  options.exhaustive_budget = w.budget;
  options.enable_images = false;
  options.enable_subsets = false;
  options.deadline_ms = deadline_ms;
  return options;
}

EngineOptions PipelineEngineOptions(const Workload& w, int64_t deadline_ms) {
  EngineOptions options;
  options.semac = PipelineOptions(w, deadline_ms);
  // Reps must recompute the decision, not serve it from the cache.
  options.decisions.enabled = false;
  return options;
}

struct Run {
  double ms = -1;
  SemAcAnswer answer = SemAcAnswer::kUnknown;
  Strategy strategy = Strategy::kNone;
  size_t candidates = 0;
  std::optional<ConjunctiveQuery> witness;
};

/// Engine::Decide with a fixed deadline configuration; chase memo and
/// oracle are primed by one untimed decision, so timed reps measure only
/// the pipeline (and its poll sites).
class Runner {
 public:
  Runner(const Workload& w, int64_t deadline_ms)
      : engine_(w.sigma, PipelineEngineOptions(w, deadline_ms)),
        pq_(engine_.Prepare(w.q)) {
    engine_.Decide(pq_);
  }

  void Once(Run* run) {
    auto start = Clock::now();
    SemAcResult result = engine_.Decide(pq_);
    double ms = MillisSince(start);
    if (run->ms < 0 || ms < run->ms) run->ms = ms;
    run->answer = result.answer;
    run->strategy = result.strategy;
    run->candidates = result.candidates_tested;
    run->witness = result.witness;
  }

 private:
  Engine engine_;
  PreparedQuery pq_;
};

/// Interleaved rounds keep per-variant bests, so systemic drift hits both
/// variants of a round equally instead of skewing whichever ran last.
void Measure(const Workload& w, int rounds, Run* off, Run* armed) {
  // 10 minutes: far beyond any row, so the deadline arms every poll site
  // (token checks + clock reads) without ever firing.
  Runner off_runner(w, /*deadline_ms=*/0);
  Runner armed_runner(w, /*deadline_ms=*/600000);
  off->ms = armed->ms = -1;
  for (int r = 0; r < rounds; ++r) {
    off_runner.Once(off);
    armed_runner.Once(armed);
  }
}

bool Parity(const Run& a, const Run& b) {
  return a.answer == b.answer && a.strategy == b.strategy &&
         a.candidates == b.candidates &&
         a.witness.has_value() == b.witness.has_value() &&
         (!a.witness.has_value() || *a.witness == *b.witness);
}

/// A row fails its gate only when both the relative bound and an
/// absolute 5ms floor are exceeded — the same floor the CI bench-diff
/// uses, because shared hardware jitters fast rows by several ms even
/// best-of-N.
bool OverGate(double ms, double base_ms, double factor) {
  return ms > base_ms * factor && ms - base_ms > 5.0;
}

int OverheadSection(bench::JsonReport* report, bool gate) {
  bench::Banner(
      "R-P1 - cancellation poll overhead on the exhaustive E-P3 rows",
      "poll sites are a relaxed atomic load (clock every 64th call) and "
      "unarmed failpoints one more relaxed load, so a never-firing "
      "deadline costs <= 2% over no deadline at all");
  bench::Table table({"workload", "off ms", "armed ms", "overhead +%",
                      "cand", "parity"});
  int failures = 0;
  for (const Workload& w : Workloads()) {
    Run off, armed;
    Measure(w, /*rounds=*/5, &off, &armed);
    bool ok = !OverGate(armed.ms, off.ms, 1.02);
    if (!ok) {
      // A noisy first pass is far more likely than real 2%+ overhead;
      // re-measure once with more rounds before declaring failure.
      Measure(w, /*rounds=*/9, &off, &armed);
      ok = !OverGate(armed.ms, off.ms, 1.02);
    }
    double pct = (armed.ms / off.ms - 1.0) * 100.0;
    bool parity = Parity(off, armed);
    table.AddRow({w.name, std::to_string(off.ms), std::to_string(armed.ms),
                  std::to_string(pct), std::to_string(off.candidates),
                  parity ? "identical" : "MISMATCH"});
    report->AddRow(
        "overhead",
        {{"workload", bench::JsonReport::Str(w.name)},
         {"off_ms", bench::JsonReport::Num(off.ms)},
         {"armed_ms", bench::JsonReport::Num(armed.ms)},
         {"overhead_pct", bench::JsonReport::Num(pct)},
         {"candidates",
          bench::JsonReport::Num(static_cast<double>(off.candidates))},
         {"parity", parity ? "true" : "false"}});
    if (!ok) {
      std::printf("*** poll overhead gate missed on %s: %+.2f%%\n",
                  w.name.c_str(), pct);
      ++failures;
    }
    if (!parity) {
      std::printf("*** outcome parity BROKEN on %s\n", w.name.c_str());
      ++failures;
    }
  }
  table.Print();
  return gate ? failures : 0;
}

int TightnessSection(bench::JsonReport* report, bool gate) {
  bench::Banner(
      "R-P2 - deadline tightness on a minutes-scale decision",
      "an elapsed deadline aborts at the next poll point, so a decision "
      "whose budgets would run for minutes returns within deadline * 1.1 "
      "+ 5ms and reports deadline-exceeded");
  // Near-unbounded enumeration budgets on a heavy cyclic query: without
  // the deadline this decision grinds through ~10^9 DFS visits.
  Generator gen(3);
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  ConjunctiveQuery q = gen.CycleQuery(6);
  bench::Table table(
      {"deadline ms", "elapsed ms", "bound ms", "strategy", "within"});
  int failures = 0;
  for (int64_t deadline_ms : {int64_t{10}, int64_t{25}, int64_t{50}}) {
    SemAcOptions options;
    options.subset_budget = size_t{1} << 30;
    options.exhaustive_budget = size_t{1} << 30;
    options.deadline_ms = deadline_ms;
    Engine engine(sigma, options);
    PreparedQuery pq = engine.Prepare(q);
    double best = -1;
    Strategy strategy = Strategy::kNone;
    // Aborted decisions are never cached, so every rep re-runs; keep the
    // best elapsed (scheduler hiccups only ever make a rep slower).
    for (int rep = 0; rep < 3; ++rep) {
      auto start = Clock::now();
      SemAcResult r = engine.Decide(pq);
      double ms = MillisSince(start);
      if (best < 0 || ms < best) best = ms;
      strategy = r.strategy;
    }
    double bound = static_cast<double>(deadline_ms) * 1.1 + 5.0;
    bool aborted = strategy == Strategy::kDeadlineExceeded;
    bool within = best <= bound;
    table.AddRow({std::to_string(deadline_ms), std::to_string(best),
                  std::to_string(bound), ToString(strategy),
                  within ? "yes" : "NO"});
    report->AddRow(
        "tightness",
        {{"deadline_ms",
          bench::JsonReport::Num(static_cast<double>(deadline_ms))},
         {"elapsed_ms", bench::JsonReport::Num(best)},
         {"bound_ms", bench::JsonReport::Num(bound)},
         {"strategy", bench::JsonReport::Str(ToString(strategy))},
         {"within", within ? "true" : "false"}});
    if (!aborted) {
      std::printf("*** deadline did not abort the %lldms row\n",
                  static_cast<long long>(deadline_ms));
      ++failures;
    }
    if (!within) {
      std::printf("*** tightness gate missed: %.2fms > %.2fms bound\n", best,
                  bound);
      ++failures;
    }
  }
  table.Print();
  return gate ? failures : 0;
}

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate") gate = true;
  }
  semacyc::bench::JsonReport report(argc, argv, "interrupt_overhead");
  int failures = semacyc::OverheadSection(&report, gate) +
                 semacyc::TightnessSection(&report, gate);
  return failures == 0 ? 0 : 1;
}
