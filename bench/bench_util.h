#ifndef SEMACYC_BENCH_BENCH_UTIL_H_
#define SEMACYC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace semacyc::bench {

/// Minimal fixed-width table printer for the "shape reports" every bench
/// emits before the google-benchmark timings: the rows that mirror what
/// the paper's figure/example/claim predicts vs. what this build measured.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace semacyc::bench

#endif  // SEMACYC_BENCH_BENCH_UTIL_H_
