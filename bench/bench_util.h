#ifndef SEMACYC_BENCH_BENCH_UTIL_H_
#define SEMACYC_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace semacyc::bench {

/// Minimal fixed-width table printer for the "shape reports" every bench
/// emits before the google-benchmark timings: the rows that mirror what
/// the paper's figure/example/claim predicts vs. what this build measured.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Dumps the rows into a JsonReport section, keyed by the column
  /// headers (all values as JSON strings) — the one-line way to make a
  /// shape report machine-readable. Declared after JsonReport below.
  template <typename Report>
  void WriteTo(Report* report, const std::string& section) const;

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const char* experiment, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Machine-readable result sink: when the binary is invoked with `--json`
/// (or `--json=<path>`), collected rows are written as
/// `BENCH_<name>.json` — an object of named sections, each an array of
/// flat key/value rows — so CI and scripts can diff bench results without
/// scraping tables. Without the flag this is a no-op.
///
/// Usage:
///   JsonReport report(argc, argv, "acyclic_hierarchy");
///   report.AddRow("gyo", {{"edges", JsonReport::Num(5000)},
///                         {"speedup", JsonReport::Num(ratio)}});
///   ...  // file is written by the destructor
class JsonReport {
 public:
  using Row = std::vector<std::pair<std::string, std::string>>;

  JsonReport(int argc, char** argv, const std::string& name)
      : path_("BENCH_" + name + ".json"), name_(name) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        enabled_ = true;
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        enabled_ = true;
        path_ = argv[i] + 7;
      }
    }
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { Write(); }

  bool enabled() const { return enabled_; }

  /// Renders a JSON number or string value. Non-finite doubles have no
  /// JSON representation and become null so the file always parses.
  static std::string Num(double v) {
    if (!std::isfinite(v)) return "null";
    std::ostringstream out;
    out << std::setprecision(12) << v;
    return out.str();
  }
  static std::string Str(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

  void AddRow(const std::string& section, Row row) {
    if (!enabled_) return;
    for (auto& [name, rows] : sections_) {
      if (name == section) {
        rows.push_back(std::move(row));
        return;
      }
    }
    sections_.push_back({section, {std::move(row)}});
  }

 private:
  void Write() {
    if (!enabled_ || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": %s", Str(name_).c_str());
    for (const auto& [name, rows] : sections_) {
      std::fprintf(f, ",\n  %s: [", Str(name).c_str());
      for (size_t r = 0; r < rows.size(); ++r) {
        std::fprintf(f, "%s\n    {", r == 0 ? "" : ",");
        for (size_t k = 0; k < rows[r].size(); ++k) {
          std::fprintf(f, "%s%s: %s", k == 0 ? "" : ", ",
                       Str(rows[r][k].first).c_str(), rows[r][k].second.c_str());
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "\n  ]");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path_.c_str());
  }

  bool enabled_ = false;
  bool written_ = false;
  std::string path_;
  std::string name_;
  std::vector<std::pair<std::string, std::vector<Row>>> sections_;
};

template <typename Report>
void Table::WriteTo(Report* report, const std::string& section) const {
  for (const auto& row : rows_) {
    typename Report::Row out;
    for (size_t c = 0; c < headers_.size() && c < row.size(); ++c) {
      out.push_back({headers_[c], Report::Str(row[c])});
    }
    report->AddRow(section, std::move(out));
  }
}

}  // namespace semacyc::bench

#endif  // SEMACYC_BENCH_BENCH_UTIL_H_
