// E9/E10 — Theorems 11/14/18/20/23 and Props 8/15: the decidability
// landscape of SemAc across the paper's dependency classes, plus the
// small-query property.
//
// One scaled family per class; the decider's answers, strategies, witness
// sizes (vs. the theoretical bound) and running times are reported.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/decider.h"

namespace semacyc {
namespace {

struct Family {
  std::string name;
  ConjunctiveQuery q;
  DependencySet sigma;
  SemAcAnswer expected;
};

/// Guarded/linear YES family: T(x0,x1) plus an E-cycle of length k that Σ
/// regenerates from T.
Family GuardedFamily(int k) {
  std::string body = "T(x0,x1)";
  std::string head;
  for (int i = 1; i <= k; ++i) {
    std::string from = "x" + std::to_string(i);
    std::string to = i == k ? "x0" : "x" + std::to_string(i + 1);
    body += ", E(" + from + "," + to + ")";
    std::string hfrom = i == 1 ? "y" : "z" + std::to_string(i - 1);
    std::string hto = i == k ? "x" : "z" + std::to_string(i);
    head += (i == 1 ? "" : ", ") + std::string("E(") + hfrom + "," + hto + ")";
  }
  Family f;
  f.name = "guarded/linear k=" + std::to_string(k);
  f.q = MustParseQuery(body);
  f.sigma = MustParseDependencySet("T(x,y) -> " + head);
  f.expected = SemAcAnswer::kYes;
  return f;
}

/// NR (full) YES family: a Bi-cycle closed by one full tgd.
Family NrFamily(int k) {
  std::string body, tgd_body;
  for (int i = 0; i < k; ++i) {
    std::string from = "x" + std::to_string(i);
    std::string to = "x" + std::to_string((i + 1) % k);
    body += (i ? ", " : "") + std::string("B") + std::to_string(i) + "(" +
            from + "," + to + ")";
    if (i < k - 1) {
      tgd_body += (i ? ", " : "") + std::string("B") + std::to_string(i) +
                  "(" + from + "," + to + ")";
    }
  }
  Family f;
  f.name = "non-recursive k=" + std::to_string(k);
  f.q = MustParseQuery(body);
  f.sigma = MustParseDependencySet(
      tgd_body + " -> B" + std::to_string(k - 1) + "(x" +
      std::to_string(k - 1) + ",x0)");
  f.expected = SemAcAnswer::kYes;
  return f;
}

/// K2 YES family: two parallel E-paths joined at both ends (a long cycle
/// through x); cascading binary keys merge the paths, collapsing the
/// cycle — the chase itself becomes acyclic (Prop 22 at work).
Family K2Family(int k) {
  std::string body = "R(x,y0), R(x,z0)";
  for (int i = 0; i < k; ++i) {
    body += ", E(y" + std::to_string(i) + ",y" + std::to_string(i + 1) + ")";
    body += ", E(z" + std::to_string(i) + ",z" + std::to_string(i + 1) + ")";
  }
  body += ", F(y" + std::to_string(k) + ",z" + std::to_string(k) + ")";
  Family f;
  f.name = "K2-keys k=" + std::to_string(k);
  f.q = MustParseQuery(body);
  f.sigma = MustParseDependencySet(
      "R(a,b), R(a,c) -> b = c. E(a,b), E(a,c) -> b = c.");
  f.expected = SemAcAnswer::kYes;
  return f;
}

/// NO family: odd cycles under an unrelated guarded tgd. Beyond the
/// decider's witness-size cap the honest answer degrades to kUnknown —
/// reported as such (the problem is 2EXPTIME-complete, after all).
Family NoFamily(int k) {
  Generator gen(static_cast<uint64_t>(k));
  Family f;
  f.name = "cyclic-core k=" + std::to_string(k) +
           (k > 1 ? " (beyond cap)" : "");
  f.q = gen.CycleQuery(2 * k + 1);
  f.sigma = MustParseDependencySet("A(x) -> B(x)");
  f.expected = k > 1 ? SemAcAnswer::kUnknown : SemAcAnswer::kNo;
  return f;
}

void ShapeReport(bench::JsonReport* report) {
  bench::Banner(
      "E9/E10 — SemAc decision landscape (Thms 11/14/18/20/23, Props 8/15)",
      "SemAc decidable for G, L/ID, NR, S, K2 with witnesses within the "
      "small-query bound; the decider must return exact answers here");
  bench::Table table({"family", "|q|", "answer", "expected", "strategy",
                      "|witness|", "bound", "time (ms)"});
  std::vector<Family> families;
  for (int k : {3, 5, 7}) families.push_back(GuardedFamily(k));
  for (int k : {3, 4, 5}) families.push_back(NrFamily(k));
  for (int k : {1, 2, 3}) families.push_back(K2Family(k));
  for (int k : {1, 2}) families.push_back(NoFamily(k));
  for (Family& f : families) {
    auto start = std::chrono::steady_clock::now();
    SemAcResult result = DecideSemanticAcyclicity(f.q, f.sigma);
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(stop - start)
            .count() /
        1000.0;
    char ms_str[32];
    std::snprintf(ms_str, sizeof(ms_str), "%.2f", ms);
    table.AddRow(
        {f.name, std::to_string(f.q.size()), ToString(result.answer),
         ToString(f.expected), ToString(result.strategy),
         result.witness.has_value() ? std::to_string(result.witness->size())
                                    : "-",
         std::to_string(result.small_query_bound), ms_str});
    if (result.answer != f.expected) {
      std::printf("!! unexpected answer for %s\n", f.name.c_str());
    }
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: YES families produce verified witnesses within the\n"
      "small-query bound (Props 8/15); cyclic cores are rejected exactly.\n");
}

void BM_DecideGuarded(benchmark::State& state) {
  Family f = GuardedFamily(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideSemanticAcyclicity(f.q, f.sigma).answer);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DecideGuarded)->DenseRange(3, 7, 2)->Complexity();

void BM_DecideNr(benchmark::State& state) {
  Family f = NrFamily(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideSemanticAcyclicity(f.q, f.sigma).answer);
  }
}
BENCHMARK(BM_DecideNr)->DenseRange(3, 5);

void BM_DecideK2(benchmark::State& state) {
  Family f = K2Family(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideSemanticAcyclicity(f.q, f.sigma).answer);
  }
}
BENCHMARK(BM_DecideK2)->DenseRange(1, 3);

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "semac_landscape");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
