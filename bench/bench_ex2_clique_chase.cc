// E6 — Example 2: NR/sticky chases do not preserve acyclicity.
//
// chase(P(x1)...P(xn), {P(x),P(y) -> R(x,y)}) holds an n-clique: both the
// acyclicity and the bounded-(hyper)treewidth of the input are destroyed,
// which is why §5 needs UCQ rewriting instead of the chase.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/query_chase.h"
#include "core/gaifman.h"
#include "core/hypergraph.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

void ShapeReport(bench::JsonReport* report) {
  bench::Banner("E6 / Example 2 — clique chase under a sticky/NR tgd",
                "|chase| = n + n^2 and the Gaifman graph holds an n-clique; "
                "the acyclic input becomes maximally cyclic");
  bench::Table table({"n", "chase atoms", "expected n+n^2", "clique >= n?",
                      "chase acyclic?"});
  for (int n : {2, 4, 8, 16, 24}) {
    CliqueChaseWorkload w = MakeCliqueChaseWorkload(n);
    QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
    GaifmanGraph g =
        GaifmanGraph::Of(chase.instance, ConnectingTerms::kAllTerms);
    table.AddRow(
        {std::to_string(n), std::to_string(chase.instance.size()),
         std::to_string(n + n * n),
         g.GreedyCliqueLowerBound() >= static_cast<size_t>(n) ? "yes" : "NO",
         IsAcyclicChase(chase.instance) ? "yes" : "no"});
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: atom counts match n + n^2 exactly; from n >= 3 the\n"
      "chase is cyclic although the input query is a trivially acyclic\n"
      "set of unary atoms.\n");
}

void BM_CliqueChase(benchmark::State& state) {
  CliqueChaseWorkload w =
      MakeCliqueChaseWorkload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaseQuery(w.q, w.sigma).instance.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CliqueChase)->RangeMultiplier(2)->Range(2, 32)->Complexity();

void BM_AcyclicityCheckOnCliqueChase(benchmark::State& state) {
  CliqueChaseWorkload w =
      MakeCliqueChaseWorkload(static_cast<int>(state.range(0)));
  QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsAcyclicChase(chase.instance));
  }
}
BENCHMARK(BM_AcyclicityCheckOnCliqueChase)->Arg(8)->Arg(16);

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "ex2_clique_chase");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
