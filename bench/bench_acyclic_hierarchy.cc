// The acyclicity-hierarchy engine (src/acyclic/) vs the seed baseline.
//
// Claims demonstrated:
//  1. The indexed worklist GYO (acyclic::GyoReduce) beats the seed's
//     quadratic scan (acyclic::GyoReduceNaive) by >= 10x on generated
//     acyclic hypergraphs with >= 5,000 edges, and scales near-linearly.
//  2. The beta/gamma deciders handle the generator families (alpha-not-beta,
//     beta-not-gamma, gamma-not-Berge, Berge trees) at thousands of atoms
//     in milliseconds, and Classify() places each family exactly.
//
// Self-timed (no google-benchmark dependency); pass --json to emit
// BENCH_acyclic_hierarchy.json via bench_util's JsonReport.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "acyclic/classify.h"
#include "acyclic/gyo.h"
#include "bench_util.h"
#include "core/hypergraph.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

acyclic::Hypergraph HgOfQuery(const ConjunctiveQuery& q) {
  return ToAcyclicHypergraph(
      Hypergraph::FromAtoms(q.body(), ConnectingTerms::kVariables));
}

/// Best-of-`reps` wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    fn();
    double ms = MillisSince(start);
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

void GyoShowdown(bench::JsonReport* report) {
  bench::Banner(
      "E1 - indexed GYO engine vs seed quadratic GYO",
      "ear removal is near-linear with incidence indexing; the seed "
      "rescans all edges per ear (O(m^2 a))");
  bench::Table table({"edges", "naive ms", "engine ms", "speedup", "agree"});
  Generator gen(7);
  for (int m : {1000, 2000, 5000, 10000, 20000}) {
    ConjunctiveQuery q = gen.RandomAcyclicQuery(m, 3, 8);
    acyclic::Hypergraph hg = HgOfQuery(q);
    bool fast_acyclic = false;
    bool naive_acyclic = false;
    // One rep for the quadratic baseline (seconds at 20k), three for the
    // engine (sub-ms timings jitter).
    double naive_ms =
        TimeMs(1, [&] { naive_acyclic = acyclic::GyoReduceNaive(hg).acyclic; });
    double fast_ms =
        TimeMs(3, [&] { fast_acyclic = acyclic::GyoReduce(hg).acyclic; });
    double speedup = naive_ms / fast_ms;
    bool agree = fast_acyclic && naive_acyclic;
    table.AddRow({std::to_string(m), std::to_string(naive_ms),
                  std::to_string(fast_ms), std::to_string(speedup),
                  agree ? "yes" : "NO"});
    report->AddRow("gyo",
                   {{"edges", bench::JsonReport::Num(m)},
                    {"naive_ms", bench::JsonReport::Num(naive_ms)},
                    {"engine_ms", bench::JsonReport::Num(fast_ms)},
                    {"speedup", bench::JsonReport::Num(speedup)},
                    {"agree", agree ? "true" : "false"}});
    if (m >= 5000 && speedup < 10.0) {
      std::printf("*** speedup target missed at m=%d: %.1fx < 10x\n", m,
                  speedup);
    }
  }
  table.Print();
}

void HierarchyDeciders(bench::JsonReport* report) {
  bench::Banner(
      "E2 - beta/gamma deciders across the generator families",
      "each family classifies exactly at its stratum; deciders stay in "
      "milliseconds at thousands of atoms");
  bench::Table table(
      {"family", "atoms", "class", "gyo ms", "beta ms", "gamma ms"});
  Generator gen(11);
  struct Family {
    std::string name;
    ConjunctiveQuery q;
    const char* expected;
  };
  for (int scale : {250, 1250}) {
    std::vector<Family> families = {
        {"alpha-not-beta", gen.AlphaNotBetaQuery(scale), "alpha"},
        {"beta-not-gamma", gen.BetaNotGammaQuery(scale), "beta"},
        {"gamma-not-berge", gen.GammaNotBergeQuery(scale), "gamma"},
        {"berge-tree", gen.BergeTreeQuery(4 * scale), "berge"},
    };
    for (const Family& f : families) {
      acyclic::Hypergraph hg = HgOfQuery(f.q);
      double gyo_ms = TimeMs(3, [&] { acyclic::GyoReduce(hg); });
      double beta_ms = TimeMs(3, [&] { acyclic::DecideBeta(hg); });
      double gamma_ms = TimeMs(3, [&] { acyclic::DecideGamma(hg); });
      const char* cls = acyclic::ToString(acyclic::Classify(hg).cls);
      table.AddRow({f.name, std::to_string(hg.NumEdges()), cls,
                    std::to_string(gyo_ms), std::to_string(beta_ms),
                    std::to_string(gamma_ms)});
      report->AddRow("deciders",
                     {{"family", bench::JsonReport::Str(f.name)},
                      {"atoms", bench::JsonReport::Num(
                                    static_cast<double>(hg.NumEdges()))},
                      {"class", bench::JsonReport::Str(cls)},
                      {"expected", bench::JsonReport::Str(f.expected)},
                      {"gyo_ms", bench::JsonReport::Num(gyo_ms)},
                      {"beta_ms", bench::JsonReport::Num(beta_ms)},
                      {"gamma_ms", bench::JsonReport::Num(gamma_ms)}});
      if (std::string(cls) != f.expected) {
        std::printf("*** family %s misclassified: %s (expected %s)\n",
                    f.name.c_str(), cls, f.expected);
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "acyclic_hierarchy");
  semacyc::GyoShowdown(&report);
  semacyc::HierarchyDeciders(&report);
  return 0;
}
