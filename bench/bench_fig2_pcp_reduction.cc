// E2 — Figure 2 / Theorem 7: the PCP reduction behind the undecidability
// of SemAc(F).
//
// Builds (q, Σ) from PCP instances, solves the instances with the bounded
// solver, and verifies that exactly the solution words make the acyclic
// path query q' equivalent to q under Σ. Times the full-tgd chase as the
// reduction's workhorse.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/query_chase.h"
#include "core/homomorphism.h"
#include "pcp/pcp.h"
#include "pcp/reduction.h"

namespace semacyc {
namespace {

const PcpInstance kSolvable{{"ab", "ba"}, {"ab", "ba"}};
const PcpInstance kSolvableHarder{{"aa", "bb", "abab"},
                                  {"aabb", "bb", "ab"}};
const PcpInstance kUnsolvable{{"ab", "aabb"}, {"aa", "bb"}};

void ShapeReport(bench::JsonReport* report) {
  bench::Banner(
      "E2 / Figure 2 + Theorem 7 — PCP reduction (SemAc(F) undecidable)",
      "the PCP instance has a solution iff q ≡Σ (acyclic path query); "
      "sync atoms are derived exactly along matching prefix pairs");
  bench::Table table({"instance", "tiles", "solution", "word", "|Σ| tgds",
                      "path ≡Σ q?", "chase atoms"});
  for (const auto& [name, instance] :
       {std::pair<const char*, PcpInstance>{"solvable-even", kSolvable},
        {"solvable-mixed", kSolvableHarder},
        {"unsolvable", kUnsolvable}}) {
    PcpReduction reduction = PcpReduction::Build(instance);
    auto solution = SolvePcpBounded(instance, 24);
    std::string word = solution.has_value() ? solution->word : "-";
    std::string verdict = "-";
    size_t chase_atoms = 0;
    // For unsolvable instances probe a non-solution word of the alphabet.
    std::string probe = solution.has_value() ? solution->word : "abab";
    ConjunctiveQuery path = PcpReduction::PathQuery(probe);
    QueryChaseResult chase = ChaseQuery(path, reduction.sigma());
    chase_atoms = chase.instance.size();
    bool works = EvaluatesTrue(reduction.q(), chase.instance);
    verdict = works ? "yes" : "no";
    table.AddRow({name, std::to_string(instance.size()),
                  solution.has_value() ? "found" : "none<=24", word,
                  std::to_string(reduction.sigma().tgds.size()), verdict,
                  std::to_string(chase_atoms)});
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: 'yes' only on solution words; the reduction preserves\n"
      "solvability, as Theorem 7 requires. (The full equivalence was also\n"
      "verified both ways in the test suite.)\n");
}

void BM_BuildReduction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(PcpReduction::Build(kSolvableHarder));
  }
}
BENCHMARK(BM_BuildReduction);

void BM_PathChase(benchmark::State& state) {
  PcpReduction reduction = PcpReduction::Build(kSolvable);
  // Repeat the solution word to lengthen the path (still a valid word of
  // tiles, so sync derivations keep firing).
  std::string word;
  for (long i = 0; i < state.range(0); ++i) word += "ab";
  ConjunctiveQuery path = PcpReduction::PathQuery(word);
  for (auto _ : state) {
    QueryChaseResult chase = ChaseQuery(path, reduction.sigma());
    benchmark::DoNotOptimize(chase.instance.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PathChase)->RangeMultiplier(2)->Range(1, 16)->Complexity();

void BM_BoundedPcpSolver(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolvePcpBounded(kSolvableHarder, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_BoundedPcpSolver)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "fig2_pcp_reduction");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
