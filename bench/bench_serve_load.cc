// bench_serve_load: closed-loop load generator for the semacycd decision
// service (src/serve/). Spins up an in-process Server on an ephemeral
// loopback port and drives it with N persistent connections x M queries
// each, measuring what the paper's engine looks like behind a socket:
//
//  1. Connection sweep (1 / 8 / 32 connections): per-request p50/p99
//     latency, aggregate throughput, shed rate. The query mix is warmed
//     first, so the sweep prices the serving path itself — protocol
//     parse, queue, decision-cache hit, response flush — not the one-off
//     decision cost the engine benches already cover.
//  2. Shed pressure: one worker, queue high-water 1, deadline-bounded
//     heavy decisions from 4 connections — most requests must come back
//     as immediate {"status": "overloaded"} lines, and every request
//     still gets exactly one response.
//
// `--gate` (CI tier-1) additionally enforces decision-outcome parity —
// every sweep response is byte-identical to `semacyc_cli --batch` output
// from a direct Engine call on the same schema — plus shed-rate sanity
// (sweep sheds nothing, pressure sheds something, no lost responses).
// Self-timed; `--json` emits BENCH_serve_load.json via JsonReport.
//
// `--client PORT` turns the binary into a scripted-session client: lines
// from stdin go to 127.0.0.1:PORT one at a time, each response line is
// printed to stdout. The CI server smoke drives a real semacycd process
// through this mode.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "chase/dependency.h"
#include "gen/generators.h"
#include "semacyc/engine.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace semacyc {
namespace {

using Clock = std::chrono::steady_clock;
using serve::Server;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

DependencySet SweepSigma() {
  return MustParseDependencySet(
      "Interest(x,z), Class(y,z) -> Owns(x,y)\n"
      "Owns(x,y) -> Listed(y)\n");
}

/// The request mix for the connection sweep: distinct shapes so the
/// decision cache holds several entries, repeated round-robin by every
/// connection.
std::vector<std::string> SweepQueries() {
  return {
      "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)",
      "q(a,b) :- Owns(a,b), Listed(b)",
      "q(x) :- Interest(x,z), Class(y,z), Owns(x,y), Listed(y)",
      "q(x,y) :- Owns(x,y), Owns(y,x)",
      "q(u) :- Listed(u)",
      "q(x,y,z) :- Interest(x,z), Class(y,z)",
  };
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct LoadResult {
  std::vector<double> latencies_ms;  // decided requests only
  size_t sent = 0;
  size_t decided = 0;
  size_t shed = 0;
  size_t errors = 0;  // transport failures / missing responses
  double wall_ms = 0;
};

/// Runs `connections` closed-loop client threads against the server, each
/// sending `per_connection` lines from `lines` round-robin (offset by the
/// connection index so concurrent connections don't march in lockstep).
LoadResult RunClosedLoop(uint16_t port, size_t connections,
                         size_t per_connection,
                         const std::vector<std::string>& lines) {
  std::vector<LoadResult> per_conn(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  auto wall_start = Clock::now();
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      LoadResult& out = per_conn[c];
      serve::LineClient client;
      std::string error;
      if (!client.Connect(port, &error)) {
        out.errors = per_connection;
        return;
      }
      for (size_t i = 0; i < per_connection; ++i) {
        const std::string& line = lines[(c + i) % lines.size()];
        auto start = Clock::now();
        if (!client.SendLine(line)) {
          ++out.errors;
          break;
        }
        std::optional<std::string> response = client.RecvLine(30000);
        double ms = MillisSince(start);
        ++out.sent;
        if (!response.has_value()) {
          ++out.errors;
          break;
        }
        if (*response == serve::OverloadedResponse()) {
          ++out.shed;
        } else {
          ++out.decided;
          out.latencies_ms.push_back(ms);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LoadResult total;
  total.wall_ms = MillisSince(wall_start);
  for (LoadResult& r : per_conn) {
    total.sent += r.sent;
    total.decided += r.decided;
    total.shed += r.shed;
    total.errors += r.errors;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              r.latencies_ms.begin(), r.latencies_ms.end());
  }
  return total;
}

int SweepSection(bench::JsonReport* report, bool gate) {
  bench::Banner(
      "S-P1 - connection sweep against the in-process decision service",
      "a single poll loop + fixed worker pool serves warmed decisions "
      "from persistent loopback connections with sub-millisecond medians "
      "and zero shedding below the queue high-water mark");
  serve::ServerOptions options;
  options.workers = 4;
  options.queue_high_water = 64;
  Server server(SweepSigma(), options);
  if (!server.ok()) {
    std::printf("*** server failed to start: %s\n", server.error().c_str());
    return 1;
  }
  std::thread runner([&server] { server.Run(); });
  const std::vector<std::string> queries = SweepQueries();
  int failures = 0;

  // Warm every query once over one connection, capturing the responses
  // for the parity gate: each must be byte-identical to the CLI batch
  // path over a direct Engine on the same schema (serve/protocol.h is
  // the shared renderer, so any drift here is a real protocol bug).
  {
    serve::LineClient warm;
    std::string error;
    if (!warm.Connect(server.port(), &error)) {
      std::printf("*** warmup connect failed: %s\n", error.c_str());
      server.RequestShutdown();
      runner.join();
      return 1;
    }
    Engine reference(SweepSigma(), SemAcOptions{});
    for (const std::string& q : queries) {
      warm.SendLine(q);
      std::optional<std::string> served = warm.RecvLine(30000);
      std::optional<std::string> direct =
          serve::BatchLineResponse(reference, q, 0, nullptr);
      bool parity = served.has_value() && direct.has_value() &&
                    *served == *direct;
      if (!parity) {
        std::printf("*** parity gate: served response differs for %s\n",
                    q.c_str());
        ++failures;
      }
      report->AddRow(
          "parity",
          {{"query", bench::JsonReport::Str(q)},
           {"parity", parity ? "true" : "false"}});
    }
  }

  bench::Table table({"connections", "requests", "p50 ms", "p99 ms",
                      "throughput qps", "shed"});
  const size_t per_connection = 200;
  for (size_t connections : {size_t{1}, size_t{8}, size_t{32}}) {
    LoadResult r =
        RunClosedLoop(server.port(), connections, per_connection, queries);
    double p50 = Percentile(&r.latencies_ms, 0.50);
    double p99 = Percentile(&r.latencies_ms, 0.99);
    double qps = r.wall_ms > 0
                     ? static_cast<double>(r.decided) / (r.wall_ms / 1000.0)
                     : 0.0;
    char p50s[32], p99s[32], qpss[32];
    std::snprintf(p50s, sizeof(p50s), "%.3f", p50);
    std::snprintf(p99s, sizeof(p99s), "%.3f", p99);
    std::snprintf(qpss, sizeof(qpss), "%.0f", qps);
    table.AddRow({std::to_string(connections), std::to_string(r.sent), p50s,
                  p99s, qpss, std::to_string(r.shed)});
    report->AddRow(
        "sweep",
        {{"connections",
          bench::JsonReport::Num(static_cast<double>(connections))},
         {"requests", bench::JsonReport::Num(static_cast<double>(r.sent))},
         {"p50_ms", bench::JsonReport::Num(p50)},
         {"p99_ms", bench::JsonReport::Num(p99)},
         {"throughput_qps", bench::JsonReport::Num(qps)},
         {"shed", bench::JsonReport::Num(static_cast<double>(r.shed))}});
    // Sanity gates: every request answered, none shed (the mix is warmed
    // decision-cache hits far below the high-water mark).
    if (r.errors != 0 || r.sent != connections * per_connection) {
      std::printf("*** %zu-connection row lost responses: sent=%zu "
                  "errors=%zu\n",
                  connections, r.sent, r.errors);
      ++failures;
    }
    if (r.shed != 0) {
      std::printf("*** %zu-connection row shed %zu requests below the "
                  "high-water mark\n",
                  connections, r.shed);
      ++failures;
    }
  }
  table.Print();
  server.RequestShutdown();
  runner.join();
  return gate ? failures : 0;
}

int ShedSection(bench::JsonReport* report, bool gate) {
  bench::Banner(
      "S-P2 - load shedding under a starved worker pool",
      "with one worker and queue high-water 1, a burst of deadline-bounded "
      "heavy decisions is shed with immediate overloaded lines instead of "
      "queueing without bound; every request still gets one response");
  serve::ServerOptions options;
  options.workers = 1;
  options.queue_high_water = 1;
  options.default_deadline_ms = 50;
  options.semac.subset_budget = 500000000;
  options.semac.exhaustive_budget = 500000000;
  Server server(MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)"), options);
  if (!server.ok()) {
    std::printf("*** server failed to start: %s\n", server.error().c_str());
    return 1;
  }
  std::thread runner([&server] { server.Run(); });
  // Heavy cyclic enumerations: each admitted decision burns its full
  // 50ms deadline, so a 4x8 closed-loop burst keeps the pool saturated.
  Generator gen(7);
  std::vector<std::string> lines = {gen.CycleQuery(5).ToString(),
                                    gen.CycleQuery(6).ToString()};
  LoadResult r = RunClosedLoop(server.port(), 4, 8, lines);
  double shed_rate =
      r.sent > 0 ? static_cast<double>(r.shed) / static_cast<double>(r.sent)
                 : 0.0;
  bench::Table table({"connections", "requests", "decided", "shed",
                      "shed rate", "wall ms"});
  char rates[32], walls[32];
  std::snprintf(rates, sizeof(rates), "%.2f", shed_rate);
  std::snprintf(walls, sizeof(walls), "%.1f", r.wall_ms);
  table.AddRow({"4", std::to_string(r.sent), std::to_string(r.decided),
                std::to_string(r.shed), rates, walls});
  table.Print();
  report->AddRow(
      "shed_pressure",
      {{"connections", bench::JsonReport::Num(4)},
       {"requests", bench::JsonReport::Num(static_cast<double>(r.sent))},
       {"decided", bench::JsonReport::Num(static_cast<double>(r.decided))},
       {"shed", bench::JsonReport::Num(static_cast<double>(r.shed))},
       {"shed_rate", bench::JsonReport::Num(shed_rate)},
       {"wall_ms", bench::JsonReport::Num(r.wall_ms)}});
  server.RequestShutdown();
  runner.join();
  int failures = 0;
  if (r.errors != 0 || r.sent != 4 * 8) {
    std::printf("*** pressure row lost responses: sent=%zu errors=%zu\n",
                r.sent, r.errors);
    ++failures;
  }
  if (r.shed == 0) {
    std::printf("*** pressure row shed nothing under a starved pool\n");
    ++failures;
  }
  if (r.decided == 0) {
    std::printf("*** pressure row decided nothing - shedding everything "
                "means the pool never ran\n");
    ++failures;
  }
  return gate ? failures : 0;
}

/// `--client PORT`: scripted session against an already-running server.
/// stdin lines go out one at a time; each response line prints to stdout.
int ClientMode(uint16_t port) {
  serve::LineClient client;
  std::string error;
  if (!client.Connect(port, &error)) {
    std::fprintf(stderr, "connect 127.0.0.1:%u failed: %s\n", port,
                 error.c_str());
    return 1;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!client.SendLine(line)) {
      std::fprintf(stderr, "send failed\n");
      return 1;
    }
    // Comment lines get no response slot (docs/SERVING.md).
    if (line[0] == '%') continue;
    std::optional<std::string> response = client.RecvLine(30000);
    if (!response.has_value()) {
      std::fprintf(stderr, "no response for: %s\n", line.c_str());
      return 1;
    }
    std::printf("%s\n", response->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--client") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s --client PORT\n", argv[0]);
        return 1;
      }
      long port = std::strtol(argv[i + 1], nullptr, 10);
      if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "bad port: %s\n", argv[i + 1]);
        return 1;
      }
      return semacyc::ClientMode(static_cast<uint16_t>(port));
    }
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }
  semacyc::bench::JsonReport report(argc, argv, "serve_load");
  int failures = semacyc::SweepSection(&report, gate) +
                 semacyc::ShedSection(&report, gate);
  return failures == 0 ? 0 : 1;
}
