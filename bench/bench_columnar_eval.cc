// Columnar data plane vs. the row evaluator on the Prop 24 pipeline
// (docs/DATAPLANE.md).
//
// Claims demonstrated:
//  1. Parity: the compiled SemiJoinProgram over dictionary-encoded
//     columns returns answer sets byte-identical to the row-oriented
//     EvaluateAcyclic on every star / path / skew row, 10^4 to 10^6
//     tuples (the same invariant tests/columnar_eval_test pins on small
//     inputs, here at scale).
//  2. Throughput: on the million-tuple star and path rows the columnar
//     path is >= 3x faster than the row path — selection vectors and
//     64-bit packed keys beat tuple-at-a-time hash sets precisely where
//     the data no longer fits the cache.
//  3. Payoff (the point of the paper): on a music-store database
//     satisfying the compulsive-collector tgd, reformulate-then-evaluate
//     (cyclic q -> acyclic witness -> columnar Yannakakis) beats exact
//     backtracking evaluation of the cyclic q while returning the same
//     answers — semantic acyclicity converts into evaluation speed.
//
// `--gate` exits non-zero when a gated row misses its bound (CI wires
// this into the tier-1 job). Self-timed; pass --json to emit
// BENCH_columnar_eval.json via bench_util's JsonReport. The full sweep,
// million-tuple rows included, stays under ~30s so CI can afford it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/homomorphism.h"
#include "data/columnar.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Canonical rendering of an answer set: one string per tuple, sorted —
/// "byte-identical" parity compares these, not set sizes.
std::vector<std::string> Canon(const std::vector<std::vector<Term>>& answers) {
  std::vector<std::string> out;
  out.reserve(answers.size());
  for (const auto& tuple : answers) {
    std::string row;
    for (const Term& t : tuple) {
      if (!row.empty()) row += ',';
      row += t.ToString();
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t TotalTuples(const Instance& db) { return db.size(); }

struct Row {
  EvalWorkload w;
  bool gate_speedup = false;  // the million-tuple star/path rows
};

std::vector<Row> Rows() {
  std::vector<Row> rows;
  // Three relations per star/path workload, two per skew workload, so the
  // per-relation budgets below put the families at ~10^4 / 10^5 / 10^6
  // total tuples (insert-dedup can shave a few under small domains).
  for (size_t per_rel : {size_t{3334}, size_t{33334}, size_t{333334}}) {
    bool million = per_rel == 333334;
    rows.push_back({MakeStarEvalWorkload(/*seed=*/41, /*spokes=*/3, per_rel,
                                         /*hubs=*/400, /*spoke_domain=*/5000),
                    million});
    rows.push_back({MakePathEvalWorkload(/*seed=*/42, /*length=*/3, per_rel,
                                         /*domain=*/2000),
                    million});
  }
  for (size_t per_rel : {size_t{5000}, size_t{50000}, size_t{500000}}) {
    rows.push_back({MakeSkewEvalWorkload(/*seed=*/43, per_rel,
                                         /*domain=*/10000, /*skew=*/2.0),
                    false});
  }
  return rows;
}

int ColumnarVsRowSection(bench::JsonReport* report, bool gate) {
  bench::Banner(
      "D-P1 - columnar vs row Yannakakis, star/path/skew at 10^4..10^6",
      "the compiled semi-join program over dictionary-encoded columns "
      "matches the row evaluator's answers byte-for-byte and is >= 3x "
      "faster on the million-tuple star/path rows");
  bench::Table table({"workload", "tuples", "encode ms", "mb", "row ms",
                      "col ms", "speedup", "parity", "answers"});
  int failures = 0;
  for (const Row& row : Rows()) {
    const EvalWorkload& w = row.w;
    size_t tuples = TotalTuples(w.database);

    auto start = Clock::now();
    data::ColumnarInstance cdb =
        data::ColumnarInstance::FromInstance(w.database);
    double encode_ms = MillisSince(start);
    double mb = static_cast<double>(cdb.ApproxBytes()) / (1024.0 * 1024.0);

    // No dependencies: the workload queries are acyclic by construction,
    // so Decide is trivial and cached — the timed reps measure only the
    // evaluation itself.
    Engine engine{DependencySet{}};
    PreparedQuery pq = engine.Prepare(w.q);
    EvalOptions row_opts;
    row_opts.path = EvalOptions::Path::kRow;

    EvalOutcome row_out = engine.Eval(pq, w.database, row_opts);
    EvalOutcome col_out = engine.Eval(pq, cdb);
    bool parity = row_out.status.ok() && col_out.status.ok() &&
                  Canon(row_out.evaluation.answers) ==
                      Canon(col_out.evaluation.answers);

    // Best-of-N: scheduler hiccups only ever make a rep slower.
    int reps = tuples >= 300000 ? 3 : 5;
    double row_ms = -1, col_ms = -1;
    for (int r = 0; r < reps; ++r) {
      start = Clock::now();
      row_out = engine.Eval(pq, w.database, row_opts);
      double ms = MillisSince(start);
      if (row_ms < 0 || ms < row_ms) row_ms = ms;
      start = Clock::now();
      col_out = engine.Eval(pq, cdb);
      ms = MillisSince(start);
      if (col_ms < 0 || ms < col_ms) col_ms = ms;
    }
    double speedup = row_ms / col_ms;
    bool speedup_ok = !row.gate_speedup || speedup >= 3.0;

    table.AddRow({w.name, std::to_string(tuples), std::to_string(encode_ms),
                  std::to_string(mb), std::to_string(row_ms),
                  std::to_string(col_ms), std::to_string(speedup),
                  parity ? "identical" : "MISMATCH",
                  std::to_string(col_out.evaluation.answers.size())});
    report->AddRow(
        "columnar_vs_row",
        {{"workload", bench::JsonReport::Str(w.name)},
         {"tuples", bench::JsonReport::Num(static_cast<double>(tuples))},
         {"encode_ms", bench::JsonReport::Num(encode_ms)},
         {"approx_mb", bench::JsonReport::Num(mb)},
         {"row_ms", bench::JsonReport::Num(row_ms)},
         {"columnar_ms", bench::JsonReport::Num(col_ms)},
         {"speedup", bench::JsonReport::Num(speedup)},
         {"parity", parity ? "true" : "false"},
         {"answers", bench::JsonReport::Num(
                         static_cast<double>(col_out.evaluation.answers.size()))},
         {"gated", row.gate_speedup ? "true" : "false"}});
    if (!parity) {
      std::printf("*** answer parity BROKEN on %s\n", w.name.c_str());
      ++failures;
    }
    if (!speedup_ok) {
      std::printf("*** speedup gate missed on %s: %.2fx < 3x\n",
                  w.name.c_str(), speedup);
      ++failures;
    }
  }
  table.Print();
  return gate ? failures : 0;
}

int PayoffSection(bench::JsonReport* report, bool gate) {
  bench::Banner(
      "D-P2 - the Prop 24 payoff on the music store (Example 1)",
      "on a database satisfying the compulsive-collector tgd, "
      "reformulate + columnar Yannakakis answers the cyclic q faster "
      "than exact backtracking evaluation, with identical answers");
  MusicStoreWorkload w =
      MakeMusicStoreWorkload(/*seed=*/7, /*customers=*/600, /*records=*/1200,
                             /*styles=*/24, /*interest_prob=*/0.3);
  Engine engine(w.sigma);
  PreparedQuery pq = engine.Prepare(w.q);
  data::ColumnarInstance cdb = data::ColumnarInstance::FromInstance(w.database);

  // Warm the decision cache so timed pipeline reps measure reformulate
  // lookup + evaluation, which is the steady-state serving cost.
  EvalOutcome warm = engine.Eval(pq, cdb);
  std::vector<std::vector<Term>> exact = EvaluateQuery(w.q, w.database);
  bool parity = warm.status.ok() &&
                Canon(warm.evaluation.answers) == Canon(exact);

  double exact_ms = -1, pipeline_ms = -1;
  for (int r = 0; r < 3; ++r) {
    auto start = Clock::now();
    exact = EvaluateQuery(w.q, w.database);
    double ms = MillisSince(start);
    if (exact_ms < 0 || ms < exact_ms) exact_ms = ms;
    start = Clock::now();
    warm = engine.Eval(pq, cdb);
    ms = MillisSince(start);
    if (pipeline_ms < 0 || ms < pipeline_ms) pipeline_ms = ms;
  }
  double speedup = exact_ms / pipeline_ms;

  bench::Table table({"database", "exact ms", "reformulate+columnar ms",
                      "speedup", "parity", "answers"});
  std::string db_desc = std::to_string(w.customers) + " customers / " +
                        std::to_string(TotalTuples(w.database)) + " tuples";
  table.AddRow({db_desc, std::to_string(exact_ms),
                std::to_string(pipeline_ms), std::to_string(speedup),
                parity ? "identical" : "MISMATCH",
                std::to_string(exact.size())});
  table.Print();
  report->AddRow(
      "payoff",
      {{"database", bench::JsonReport::Str(db_desc)},
       {"exact_ms", bench::JsonReport::Num(exact_ms)},
       {"pipeline_ms", bench::JsonReport::Num(pipeline_ms)},
       {"speedup", bench::JsonReport::Num(speedup)},
       {"parity", parity ? "true" : "false"},
       {"answers",
        bench::JsonReport::Num(static_cast<double>(exact.size()))}});
  if (!parity) {
    std::printf("*** payoff parity BROKEN: pipeline answers differ from "
                "exact evaluation\n");
    return gate ? 1 : 0;
  }
  return 0;
}

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
  }
  semacyc::bench::JsonReport report(argc, argv, "columnar_eval");
  int failures = semacyc::ColumnarVsRowSection(&report, gate) +
                 semacyc::PayoffSection(&report, gate);
  return failures == 0 ? 0 : 1;
}
