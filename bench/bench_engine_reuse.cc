// Prepared-schema engine reuse vs cold free-function calls.
//
// Claim demonstrated: on the realistic service workload — many decisions
// against one fixed Σ, with queries repeating — a shared semacyc::Engine
// amortizes everything that depends only on (q, Σ): schema analysis,
// chase(q, Σ), the UCQ rewriting, the containment oracle's memo, and
// finally the decision itself. The cold path (one free-function call per
// decision, the pre-Engine behavior) re-derives all of it every time.
//
// Three configurations over the identical call sequence:
//   cold       DecideSemanticAcyclicity per call (transient Engine each)
//   oracle     shared Engine, decision cache off — repeat decisions rerun
//              the strategies but reuse chases, rewritings and the oracle
//              memo (the amortization floor for non-identical workloads)
//   prepared   shared Engine, full configuration (decision cache on)
//
// Self-timed (no google-benchmark dependency); pass --json to emit
// BENCH_engine_reuse.json via bench_util's JsonReport.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Workload {
  std::string name;
  DependencySet sigma;
  std::vector<ConjunctiveQuery> queries;  // distinct queries
  int repeats = 0;                        // call sequence = repeats x queries
};

SemAcOptions BenchOptions() {
  SemAcOptions options;
  options.subset_budget = 8000;
  options.exhaustive_budget = 8000;
  return options;
}

std::vector<Workload> MakeWorkloads() {
  std::vector<Workload> out;
  {
    // The paper's Example 1 schema: guarded tgd, YES and NO queries mixed.
    Workload w;
    w.name = "guarded-example1";
    w.sigma =
        MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)");
    w.queries.push_back(
        MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)"));
    w.queries.push_back(MustParseQuery(
        "q(x) :- Interest(x,z), Class(y,z), Owns(x,y), Owns(y,x)"));
    w.queries.push_back(MustParseQuery("Interest(x,z), Class(y,z)"));
    w.repeats = 12;
    out.push_back(std::move(w));
  }
  {
    // Linear/guarded set whose oracle path builds a UCQ rewriting.
    Workload w;
    w.name = "linear-rewriting";
    w.sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
    Generator gen(7);
    w.queries.push_back(MustParseQuery("T(x,y), E(y,z), E(z,x)"));
    w.queries.push_back(gen.CycleQuery(3));
    w.queries.push_back(gen.CycleQuery(4));
    w.repeats = 10;
    out.push_back(std::move(w));
  }
  {
    // Full recursive set: strategies run to their budgets (kUnknown), the
    // most expensive repeat shape the cache can absorb.
    Workload w;
    w.name = "full-recursive";
    w.sigma = MustParseDependencySet("E(x,y), E(y,z) -> E(x,z)");
    Generator gen(11);
    w.queries.push_back(gen.CycleQuery(3));
    w.queries.push_back(gen.CycleQuery(4));
    w.repeats = 8;
    out.push_back(std::move(w));
  }
  return out;
}

void EngineShowdown(bench::JsonReport* report) {
  bench::Banner(
      "Engine reuse — prepared schema/queries vs cold free-function calls",
      "repeat decisions against one fixed Sigma amortize schema analysis, "
      "chase, rewriting, oracle memo and the decision itself");
  bench::Table table({"workload", "calls", "cold (ms)", "oracle-reuse (ms)",
                      "prepared (ms)", "cold/oracle", "cold/prepared",
                      "parity"});

  for (Workload& w : MakeWorkloads()) {
    SemAcOptions options = BenchOptions();
    const size_t calls = w.queries.size() * static_cast<size_t>(w.repeats);

    // Cold: the pre-Engine behavior, everything rebuilt per call.
    std::vector<SemAcAnswer> cold_answers;
    auto cold_start = Clock::now();
    for (int r = 0; r < w.repeats; ++r) {
      for (const ConjunctiveQuery& q : w.queries) {
        cold_answers.push_back(
            DecideSemanticAcyclicity(q, w.sigma, options).answer);
      }
    }
    double cold_ms = MillisSince(cold_start);

    // Shared engine, decision cache off: every call runs the pipeline but
    // off shared chases/rewritings and a surviving oracle memo.
    std::vector<SemAcAnswer> oracle_answers;
    EngineConfig no_decision_cache;
    no_decision_cache.cache_decisions = false;
    Engine oracle_engine(w.sigma, options, no_decision_cache);
    auto oracle_start = Clock::now();
    {
      std::vector<PreparedQuery> prepared;
      for (const ConjunctiveQuery& q : w.queries) {
        prepared.push_back(oracle_engine.Prepare(q));
      }
      for (int r = 0; r < w.repeats; ++r) {
        for (const PreparedQuery& pq : prepared) {
          oracle_answers.push_back(oracle_engine.Decide(pq).answer);
        }
      }
    }
    double oracle_ms = MillisSince(oracle_start);

    // Full engine: repeats served from the decision cache.
    std::vector<SemAcAnswer> prepared_answers;
    Engine engine(w.sigma, options);
    auto prepared_start = Clock::now();
    {
      std::vector<PreparedQuery> prepared;
      for (const ConjunctiveQuery& q : w.queries) {
        prepared.push_back(engine.Prepare(q));
      }
      for (int r = 0; r < w.repeats; ++r) {
        for (const PreparedQuery& pq : prepared) {
          prepared_answers.push_back(engine.Decide(pq).answer);
        }
      }
    }
    double prepared_ms = MillisSince(prepared_start);

    bool parity =
        cold_answers == oracle_answers && cold_answers == prepared_answers;

    char cold_str[32], oracle_str[32], prepared_str[32], ro[32], rp[32];
    std::snprintf(cold_str, sizeof(cold_str), "%.2f", cold_ms);
    std::snprintf(oracle_str, sizeof(oracle_str), "%.2f", oracle_ms);
    std::snprintf(prepared_str, sizeof(prepared_str), "%.2f", prepared_ms);
    std::snprintf(ro, sizeof(ro), "%.1fx", cold_ms / oracle_ms);
    std::snprintf(rp, sizeof(rp), "%.1fx", cold_ms / prepared_ms);
    table.AddRow({w.name, std::to_string(calls), cold_str, oracle_str,
                  prepared_str, ro, rp, parity ? "ok" : "MISMATCH"});
    if (!parity) {
      std::printf("!! answer mismatch between engine paths on %s\n",
                  w.name.c_str());
    }

    EngineStats stats = engine.stats();
    report->AddRow(
        "engine_reuse",
        {{"workload", bench::JsonReport::Str(w.name)},
         {"calls", bench::JsonReport::Num(static_cast<double>(calls))},
         {"cold_ms", bench::JsonReport::Num(cold_ms)},
         {"oracle_reuse_ms", bench::JsonReport::Num(oracle_ms)},
         {"prepared_ms", bench::JsonReport::Num(prepared_ms)},
         {"speedup_oracle", bench::JsonReport::Num(cold_ms / oracle_ms)},
         {"speedup_prepared", bench::JsonReport::Num(cold_ms / prepared_ms)},
         {"decision_cache_hits",
          bench::JsonReport::Num(static_cast<double>(stats.decision_cache_hits))},
         {"parity", parity ? std::string("true") : std::string("false")}});
  }

  table.Print();
  std::printf(
      "Shape check: identical answers on all three paths; prepared >> cold\n"
      "on every workload (the oracle-reuse row is the floor when calls\n"
      "repeat in structure but not verbatim).\n");
}

/// Bounded caches vs unbounded on the same prepared-engine call sequence:
/// the eviction overhead and the hit-rate cliff. A budget comfortably
/// above the working set (16 MiB) should match unbounded; a budget below
/// it (8 KiB total across the four caches) thrashes — every repeat
/// recomputes — and the evictions column shows why.
void BoundedCacheShowdown(bench::JsonReport* report) {
  bench::Banner(
      "Bounded caches — LRU eviction overhead and hit-rate cliff",
      "the same workload under 8 KiB / 16 MiB / unbounded byte budgets; "
      "answers are identical, only time and hit rate move");
  bench::Table table({"workload", "budget", "time (ms)", "hits", "evictions",
                      "vs unbounded", "parity"});

  struct Budget {
    const char* name;
    size_t bytes;  // 0 = unbounded
  };
  const Budget budgets[] = {
      {"8KiB", 8 * 1024}, {"16MiB", 16 * 1024 * 1024}, {"unbounded", 0}};

  for (Workload& w : MakeWorkloads()) {
    SemAcOptions options = BenchOptions();
    std::vector<SemAcAnswer> reference;
    double unbounded_ms = 0;

    // Unbounded last in the table but measured first for the reference
    // answers; measurement order does not share state (fresh engines).
    struct RowData {
      double ms = 0;
      size_t hits = 0;
      size_t evictions = 0;
      std::vector<SemAcAnswer> answers;
    };
    RowData rows[3];
    for (int b = 2; b >= 0; --b) {
      EngineOptions eo;
      eo.semac = options;
      if (budgets[b].bytes > 0) eo.SetTotalCacheBudget(budgets[b].bytes);
      Engine engine(w.sigma, eo);
      auto start = Clock::now();
      std::vector<PreparedQuery> prepared;
      for (const ConjunctiveQuery& q : w.queries) {
        prepared.push_back(engine.Prepare(q));
      }
      for (int r = 0; r < w.repeats; ++r) {
        for (const PreparedQuery& pq : prepared) {
          rows[b].answers.push_back(engine.Decide(pq).answer);
        }
      }
      rows[b].ms = MillisSince(start);
      EngineCacheStats stats = engine.Stats();
      rows[b].hits = stats.chase.hits + stats.rewrite.hits +
                     stats.oracles.hits + stats.decisions.hits;
      rows[b].evictions = stats.chase.evictions + stats.rewrite.evictions +
                          stats.oracles.evictions + stats.decisions.evictions;
      if (b == 2) {
        reference = rows[b].answers;
        unbounded_ms = rows[b].ms;
      }
    }

    for (int b = 0; b < 3; ++b) {
      bool parity = rows[b].answers == reference;
      char ms_str[32], ratio[32];
      std::snprintf(ms_str, sizeof(ms_str), "%.2f", rows[b].ms);
      std::snprintf(ratio, sizeof(ratio), "%.1fx", rows[b].ms / unbounded_ms);
      table.AddRow({w.name, budgets[b].name, ms_str,
                    std::to_string(rows[b].hits),
                    std::to_string(rows[b].evictions), ratio,
                    parity ? "ok" : "MISMATCH"});
      if (!parity) {
        std::printf("!! answer mismatch under budget %s on %s\n",
                    budgets[b].name, w.name.c_str());
      }
      report->AddRow(
          "bounded_caches",
          {{"workload", bench::JsonReport::Str(w.name)},
           {"budget", bench::JsonReport::Str(budgets[b].name)},
           {"bounded_ms", bench::JsonReport::Num(rows[b].ms)},
           {"cache_hits",
            bench::JsonReport::Num(static_cast<double>(rows[b].hits))},
           {"evictions",
            bench::JsonReport::Num(static_cast<double>(rows[b].evictions))},
           {"parity", parity ? std::string("true") : std::string("false")}});
    }
  }
  table.Print();
  std::printf(
      "Shape check: parity on every budget; 16MiB ~ unbounded (no\n"
      "evictions on these working sets), 8KiB shows the cliff — high\n"
      "eviction counts and cold-ish times.\n");
}

/// Concurrent batch decisions over *distinct* queries: one shared Engine,
/// N threads, each batch item structurally different so the threads do
/// independent work (an all-repeats batch is served by the decision cache
/// and gains nothing from extra threads — worse, concurrent first
/// computations of the same query duplicate each other). The shape check
/// here is parity — identical answers from the threaded run; the speedup
/// column is context that scales with the host's cores (a single-core
/// host, like some CI containers, shows ~1.0x minus scheduling overhead).
void BatchShowdown(bench::JsonReport* report) {
  bench::Banner(
      "Engine::DecideBatch — shared caches under concurrency",
      "N threads sharing one Engine decide a distinct-query batch with "
      "exactly the answers of one thread; wall time scales with cores");
  bench::Table table({"batch", "cores", "1 thread (ms)", "4 threads (ms)",
                      "speedup", "parity"});

  DependencySet sigma = MustParseDependencySet("Z0(x,y) -> Z1(x,y)");
  SemAcOptions options = BenchOptions();
  Generator gen(77);
  std::vector<ConjunctiveQuery> queries;
  for (int i = 0; i < 48; ++i) {
    // Random acyclic query plus one chord: sometimes cyclic, always a
    // distinct structure (the soundness-sweep family of the test suite).
    ConjunctiveQuery base = gen.RandomAcyclicQuery(4, 2, 2, "Z");
    std::vector<Atom> body = base.body();
    std::vector<Term> vars = base.Variables();
    body.push_back(
        Atom(Predicate::Get("Z0", 2),
             {vars[static_cast<size_t>(
                  gen.Uniform(0, static_cast<int>(vars.size()) - 1))],
              vars[static_cast<size_t>(
                  gen.Uniform(0, static_cast<int>(vars.size()) - 1))]}));
    queries.emplace_back(std::vector<Term>{}, std::move(body));
  }

  std::vector<PreparedQuery> batch;
  {
    Engine plan(sigma, options);
    for (const ConjunctiveQuery& q : queries) batch.push_back(plan.Prepare(q));
  }
  Engine seq_engine(sigma, options);
  auto seq_start = Clock::now();
  std::vector<SemAcResult> seq = seq_engine.DecideBatch(batch, 1);
  double seq_ms = MillisSince(seq_start);

  Engine par_engine(sigma, options);
  auto par_start = Clock::now();
  std::vector<SemAcResult> par = par_engine.DecideBatch(batch, 4);
  double par_ms = MillisSince(par_start);

  bool parity = seq.size() == par.size();
  for (size_t i = 0; parity && i < seq.size(); ++i) {
    parity = seq[i].answer == par[i].answer;
  }
  unsigned cores = std::thread::hardware_concurrency();
  char seq_str[32], par_str[32], sp[32];
  std::snprintf(seq_str, sizeof(seq_str), "%.2f", seq_ms);
  std::snprintf(par_str, sizeof(par_str), "%.2f", par_ms);
  std::snprintf(sp, sizeof(sp), "%.1fx", seq_ms / par_ms);
  table.AddRow({std::to_string(batch.size()), std::to_string(cores), seq_str,
                par_str, sp, parity ? "ok" : "MISMATCH"});
  report->AddRow(
      "batch",
      {{"batch", bench::JsonReport::Num(static_cast<double>(batch.size()))},
       {"cores", bench::JsonReport::Num(static_cast<double>(cores))},
       {"seq_ms", bench::JsonReport::Num(seq_ms)},
       {"par4_ms", bench::JsonReport::Num(par_ms)},
       {"speedup", bench::JsonReport::Num(seq_ms / par_ms)},
       {"parity", parity ? std::string("true") : std::string("false")}});
  table.Print();
}

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "engine_reuse");
  semacyc::EngineShowdown(&report);
  semacyc::BoundedCacheShowdown(&report);
  semacyc::BatchShowdown(&report);
  return 0;
}
