// E14 — Lemma 1 / Definition 2: the two containment engines.
//
// Chase-based containment (Lemma 1) vs rewriting-based containment
// (Definition 2, for UCQ-rewritable classes): agreement check plus
// throughput on batteries of queries.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/query_chase.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "rewrite/rewrite_containment.h"

namespace semacyc {
namespace {

struct Battery {
  DependencySet sigma;
  std::vector<std::pair<ConjunctiveQuery, ConjunctiveQuery>> pairs;
};

Battery MakeBattery() {
  Battery b;
  b.sigma = MustParseDependencySet(
      "A0(x) -> B0(x). B0(x) -> E0(x,y). A0(x), B0(y) -> F0(x,y). "
      "E0(x,y) -> G0(y).");
  const char* lhs[] = {"A0(u)", "B0(u)", "A0(u), B0(v)", "E0(u,v)",
                       "F0(u,v), G0(v)"};
  const char* rhs[] = {"G0(u)", "E0(u,v)", "F0(u,v)", "B0(u)",
                       "A0(u), G0(u)"};
  for (const char* l : lhs) {
    for (const char* r : rhs) {
      b.pairs.push_back({MustParseQuery(l), MustParseQuery(r)});
    }
  }
  return b;
}

void ShapeReport(bench::JsonReport* report) {
  bench::Banner("E14 / Lemma 1 vs Definition 2 — containment engines",
                "chase-based and rewriting-based containment are both "
                "exact on non-recursive sets and must agree");
  Battery battery = MakeBattery();
  int agree = 0, yes = 0, total = 0;
  for (const auto& [l, r] : battery.pairs) {
    Tri by_chase = ContainedUnder(l, r, battery.sigma);
    Tri by_rewrite = RewriteContained(l, r, battery.sigma.tgds);
    ++total;
    if (by_chase == by_rewrite) ++agree;
    if (by_chase == Tri::kYes) ++yes;
  }
  bench::Table table({"pairs", "agreements", "contained (yes)"});
  table.AddRow({std::to_string(total), std::to_string(agree),
                std::to_string(yes)});
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(total == agree
                  ? "Shape check: full agreement across the battery.\n"
                  : "!! engines disagree\n");
}

void BM_ChaseContainment(benchmark::State& state) {
  Battery battery = MakeBattery();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [l, r] = battery.pairs[i++ % battery.pairs.size()];
    benchmark::DoNotOptimize(ContainedUnder(l, r, battery.sigma));
  }
}
BENCHMARK(BM_ChaseContainment);

void BM_RewriteContainmentCold(benchmark::State& state) {
  Battery battery = MakeBattery();
  size_t i = 0;
  for (auto _ : state) {
    const auto& [l, r] = battery.pairs[i++ % battery.pairs.size()];
    benchmark::DoNotOptimize(RewriteContained(l, r, battery.sigma.tgds));
  }
}
BENCHMARK(BM_RewriteContainmentCold);

void BM_RewriteContainmentCached(benchmark::State& state) {
  // With the rewriting precomputed once, candidate checks reduce to UCQ
  // evaluation over the frozen candidate — the decider's fast path.
  Battery battery = MakeBattery();
  ConjunctiveQuery target = MustParseQuery("G0(u)");
  RewriteResult rewriting = RewriteToUcq(target, battery.sigma.tgds);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [l, r] = battery.pairs[i++ % battery.pairs.size()];
    benchmark::DoNotOptimize(RewriteContained(l, rewriting));
  }
}
BENCHMARK(BM_RewriteContainmentCached);

void BM_ClassicContainmentScaling(benchmark::State& state) {
  // Constraint-free Chandra–Merlin on growing acyclic queries.
  Generator gen(11);
  ConjunctiveQuery q1 =
      gen.RandomAcyclicQuery(static_cast<int>(state.range(0)), 2, 2, "Q");
  ConjunctiveQuery q2 = q1.RenameApart();
  DependencySet empty;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ContainedUnder(q1, q2, empty));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ClassicContainmentScaling)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Complexity();

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "containment");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
