// E4/E8 — Figure 4 + Examples 4 & 5: keys beyond K2 destroy acyclicity.
//
// Part 1 (Example 4): one key over a binary+ternary schema breaks
// acyclicity in a single chase step.
// Part 2 (Example 5 / Figure 4): two keys (arity-4 R-key + binary H-key)
// chase an acyclic "split-square" tree query into a full (n+1) x (n+1)
// grid — acyclicity AND bounded treewidth are destroyed.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/query_chase.h"
#include "core/gaifman.h"
#include "core/hypergraph.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

void ShapeReport(bench::JsonReport* report) {
  bench::Banner("E4/E8 / Figure 4 + Examples 4-5 — key chase vs acyclicity",
                "acyclic q + two keys ==> chase contains an n x n grid "
                "(unbounded treewidth); K2 keys can never do this (Prop 22)");
  {
    KeySquareWorkload w = MakeKeySquareWorkload();
    QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
    std::printf("Example 4: |q|=%zu acyclic=%s --chase--> |I|=%zu acyclic=%s\n",
                w.q.size(), IsAcyclic(w.q) ? "yes" : "no",
                chase.instance.size(),
                IsAcyclicChase(chase.instance) ? "yes" : "NO (cycle closed)");
  }
  bench::Table table({"n", "|q| atoms", "q acyclic?", "chase atoms",
                      "chase acyclic?", "grid nodes", "gaifman edges"});
  for (int n : {1, 2, 3, 4, 5}) {
    KeyGridWorkload w = MakeKeyGridWorkload(n);
    QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
    GaifmanGraph g =
        GaifmanGraph::Of(chase.instance, ConnectingTerms::kAllTerms);
    table.AddRow({std::to_string(n), std::to_string(w.q.size()),
                  IsAcyclic(w.q) ? "yes" : "NO",
                  std::to_string(chase.instance.size()),
                  IsAcyclicChase(chase.instance) ? "yes" : "no",
                  std::to_string((n + 1) * (n + 1)),
                  std::to_string(g.EdgeCount())});
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: the input stays acyclic at every n while the chase\n"
      "flips to cyclic from n=2 on and Gaifman edges grow ~quadratically\n"
      "(the grid) — exactly the Figure 4 phenomenon.\n");
}

void BM_KeyGridChase(benchmark::State& state) {
  KeyGridWorkload w = MakeKeyGridWorkload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
    benchmark::DoNotOptimize(chase.instance.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KeyGridChase)->DenseRange(1, 5)->Complexity();

void BM_KeySquareChase(benchmark::State& state) {
  KeySquareWorkload w = MakeKeySquareWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaseQuery(w.q, w.sigma).instance.size());
  }
}
BENCHMARK(BM_KeySquareChase);

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "fig4_key_grid");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
