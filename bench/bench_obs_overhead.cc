// Observability overhead: the decision pipeline with metrics + null trace
// sink vs the bare pre-PR cost center, on the E-P3 exhaustive rows.
//
// Claims demonstrated:
//  1. Tracing OFF (the default: no sink, metrics always on) costs <= 2%
//     over the bare strategy call on every exhaustive E-P3 row. The
//     instrumentation is per-strategy RAII timers and relaxed atomic
//     adds — nothing runs per candidate — so the Engine's whole
//     added cost (core check, cache probes, phase timers, oracle
//     re-weigh) fits inside the gate.
//  2. Tracing ON (a sink that renders every trace to JSON) stays
//     bounded: <= 10% over the bare call. Traces carry one span per
//     strategy, not per candidate, so rendering cost is independent of
//     search size.
//  3. Outcome parity: answers, candidate counts and witnesses are
//     identical across bare / off / trace — instrumentation never
//     changes results.
//
// `--gate` exits non-zero when a gated row misses its bound (CI wires
// this into the tier-1 job). Self-timed; pass --json to emit
// BENCH_obs_overhead.json via bench_util's JsonReport.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/obs.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Best-of-`reps` wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(int reps, Fn&& fn) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    fn();
    double ms = MillisSince(start);
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

/// The E-P3 exhaustive workloads from bench_witness_pipeline: cyclic
/// cores in the NO-input regime, budgets above the space size so every
/// run sweeps the identical candidate space.
struct Workload {
  std::string name;
  ConjunctiveQuery q;
  DependencySet sigma;
  acyclic::AcyclicityClass target;
  size_t max_atoms;
  size_t budget;
};

std::vector<Workload> Workloads() {
  Generator gen(3);
  DependencySet copy = MustParseDependencySet("E(x,y) -> F(x,y).");
  DependencySet chain =
      MustParseDependencySet("E(x,y) -> F(x,y). F(x,y) -> G(x,y).");
  auto spread_head = [](const ConjunctiveQuery& q, size_t stride) {
    std::vector<Term> head;
    for (size_t i = 0; i < 4; ++i) head.push_back(q.body()[i * stride].arg(0));
    return ConjunctiveQuery(head, q.body());
  };
  ConjunctiveQuery k4bool({}, gen.CliqueQuery(4).body());
  ConjunctiveQuery k4 = spread_head(gen.CliqueQuery(4), 3);
  ConjunctiveQuery c6 = gen.CycleQuery(6);
  std::vector<Workload> out;
  out.push_back({"exhaustive-alpha-c6", c6, chain,
                 acyclic::AcyclicityClass::kAlpha, 4, 1u << 30});
  out.push_back({"exhaustive-beta-k4", k4bool, copy,
                 acyclic::AcyclicityClass::kBeta, 4, 1u << 30});
  out.push_back({"exhaustive-berge-k4", k4bool, copy,
                 acyclic::AcyclicityClass::kBerge, 4, 1u << 30});
  out.push_back({"exhaustive-alpha-k4", k4, copy,
                 acyclic::AcyclicityClass::kAlpha, 4, 1u << 30});
  return out;
}

/// Swallows traces after rendering them to JSON — the full serialization
/// cost without I/O. The byte count keeps the render from being elided.
class DiscardSink final : public obs::TraceSink {
 public:
  void Consume(const obs::DecisionTrace& trace) override {
    bytes_ += trace.ToJson().size();
    ++traces_;
  }
  size_t traces() const { return traces_; }
  size_t bytes() const { return bytes_; }

 private:
  size_t traces_ = 0;
  size_t bytes_ = 0;
};

SemAcOptions PipelineOptions(const Workload& w) {
  SemAcOptions options;
  options.target_class = w.target;
  // Pin the enumerated bound to the row's max_atoms (the small-query
  // bound is far larger) and isolate the exhaustive strategy, mirroring
  // the bare ExhaustiveWitnessSearch call.
  options.witness_atoms_cap = w.max_atoms;
  options.exhaustive_budget = w.budget;
  options.enable_images = false;
  options.enable_subsets = false;
  return options;
}

EngineOptions PipelineEngineOptions(const Workload& w) {
  EngineOptions options;
  options.semac = PipelineOptions(w);
  // Reps must recompute the decision, not serve it from the cache.
  options.decisions.enabled = false;
  return options;
}

struct Run {
  double ms = 0;
  SemAcAnswer answer = SemAcAnswer::kUnknown;
  size_t candidates = 0;
  std::optional<ConjunctiveQuery> witness;
};

/// The pre-PR cost center: the bare exhaustive strategy call, chase and
/// oracle prebuilt outside the timed region (exactly what the E-P3 rows
/// of bench_witness_pipeline time).
class BareRunner {
 public:
  explicit BareRunner(const Workload& w)
      : w_(w),
        chase_(ChaseQuery(w.q, w.sigma, chase_options_)),
        oracle_(w.q, w.sigma, chase_options_, rewrite_options_,
                /*try_rewriting=*/true, /*memoize=*/true) {}

  void Once(Run* run) {
    auto start = Clock::now();
    WitnessSearchOutcome outcome =
        ExhaustiveWitnessSearch(w_.q, w_.sigma, chase_, oracle_, w_.max_atoms,
                                w_.budget, w_.target, tuning_);
    double ms = MillisSince(start);
    if (run->ms < 0 || ms < run->ms) run->ms = ms;
    run->answer = outcome.answer == Tri::kYes ? SemAcAnswer::kYes
                                              : SemAcAnswer::kUnknown;
    run->candidates = outcome.candidates_tested;
    run->witness = outcome.witness;
  }

 private:
  const Workload& w_;
  ChaseOptions chase_options_;
  RewriteOptions rewrite_options_;
  QueryChaseResult chase_;
  ContainmentOracle oracle_;
  WitnessTuning tuning_;
};

/// The instrumented pipeline: Engine::Decide with metrics always on and
/// `sink` attached (null = tracing off). Chase cache and oracle are
/// primed by one untimed decision, so timed reps pay the same prebuilt
/// chase/oracle as the bare run plus everything the Engine adds.
class EngineRunner {
 public:
  EngineRunner(const Workload& w, obs::TraceSink* sink)
      : engine_(w.sigma,
                [&] {
                  EngineOptions options = PipelineEngineOptions(w);
                  options.semac.trace_sink = sink;
                  return options;
                }()),
        pq_(engine_.Prepare(w.q)) {
    engine_.Decide(pq_);  // prime chase memo + oracle
  }

  void Once(Run* run) {
    auto start = Clock::now();
    SemAcResult result = engine_.Decide(pq_);
    double ms = MillisSince(start);
    if (run->ms < 0 || ms < run->ms) run->ms = ms;
    run->answer = result.answer;
    run->candidates = result.candidates_tested;
    run->witness = result.witness;
  }

 private:
  Engine engine_;
  PreparedQuery pq_;
};

/// One measurement pass: `rounds` interleaved rounds, each timing bare /
/// off / trace back to back, keeping per-variant bests — systemic drift
/// (another process, thermal throttling) hits all three variants of a
/// round equally instead of skewing whichever variant ran last.
void Measure(const Workload& w, int rounds, Run* bare, Run* off, Run* trace,
             DiscardSink* sink) {
  BareRunner bare_runner(w);
  EngineRunner off_runner(w, nullptr);
  EngineRunner trace_runner(w, sink);
  bare->ms = off->ms = trace->ms = -1;
  for (int r = 0; r < rounds; ++r) {
    bare_runner.Once(bare);
    off_runner.Once(off);
    trace_runner.Once(trace);
  }
}

bool Parity(const Run& a, const Run& b) {
  return (a.answer == SemAcAnswer::kYes) == (b.answer == SemAcAnswer::kYes) &&
         a.candidates == b.candidates &&
         a.witness.has_value() == b.witness.has_value() &&
         (!a.witness.has_value() || *a.witness == *b.witness);
}

/// A row fails its gate only when both the relative bound and an
/// absolute 5ms floor are exceeded — the same floor the CI bench-diff
/// uses, because shared hardware jitters fast rows by several ms even
/// best-of-N. The hundreds-of-ms exhaustive-alpha-k4 row is where the
/// relative bound carries real signal.
bool OverGate(double ms, double base_ms, double factor) {
  return ms > base_ms * factor && ms - base_ms > 5.0;
}

int OverheadShowdown(bench::JsonReport* report, bool gate) {
  bench::Banner(
      "E-P4 - observability overhead on the exhaustive E-P3 rows",
      "metrics are per-strategy timers + relaxed atomics and traces carry "
      "one span per strategy, so tracing OFF costs <= 2% over the bare "
      "strategy call and full JSON tracing stays <= 10%");
  bench::Table table({"workload", "bare ms", "off ms", "trace ms", "off +%",
                      "trace +%", "cand", "parity"});
  int failures = 0;
  for (const Workload& w : Workloads()) {
    Run bare, off, trace;
    DiscardSink sink;
    Measure(w, /*rounds=*/5, &bare, &off, &trace, &sink);
    bool off_ok = !OverGate(off.ms, bare.ms, 1.02);
    bool trace_ok = !OverGate(trace.ms, bare.ms, 1.10);
    if (!off_ok || !trace_ok) {
      // A noisy first pass is far more likely than real 2%+ overhead;
      // re-measure once with more rounds before declaring failure.
      Measure(w, /*rounds=*/9, &bare, &off, &trace, &sink);
      off_ok = !OverGate(off.ms, bare.ms, 1.02);
      trace_ok = !OverGate(trace.ms, bare.ms, 1.10);
    }
    double off_pct = (off.ms / bare.ms - 1.0) * 100.0;
    double trace_pct = (trace.ms / bare.ms - 1.0) * 100.0;
    bool parity = Parity(bare, off) && Parity(off, trace);
    table.AddRow({w.name, std::to_string(bare.ms), std::to_string(off.ms),
                  std::to_string(trace.ms), std::to_string(off_pct),
                  std::to_string(trace_pct), std::to_string(off.candidates),
                  parity ? "identical" : "MISMATCH"});
    report->AddRow(
        "overhead",
        {{"workload", bench::JsonReport::Str(w.name)},
         {"bare_ms", bench::JsonReport::Num(bare.ms)},
         {"off_ms", bench::JsonReport::Num(off.ms)},
         {"trace_ms", bench::JsonReport::Num(trace.ms)},
         {"off_overhead_pct", bench::JsonReport::Num(off_pct)},
         {"trace_overhead_pct", bench::JsonReport::Num(trace_pct)},
         {"candidates",
          bench::JsonReport::Num(static_cast<double>(off.candidates))},
         {"trace_bytes",
          bench::JsonReport::Num(static_cast<double>(sink.bytes()))},
         {"parity", parity ? "true" : "false"}});
    if (!off_ok) {
      std::printf("*** tracing-off overhead gate missed on %s: %+.2f%%\n",
                  w.name.c_str(), off_pct);
      ++failures;
    }
    if (!trace_ok) {
      std::printf("*** full-trace overhead gate missed on %s: %+.2f%%\n",
                  w.name.c_str(), trace_pct);
      ++failures;
    }
    if (!parity) {
      std::printf("*** outcome parity BROKEN on %s\n", w.name.c_str());
      ++failures;
    }
  }
  table.Print();
  return gate ? failures : 0;
}

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate") gate = true;
  }
  semacyc::bench::JsonReport report(argc, argv, "obs_overhead");
  return semacyc::OverheadShowdown(&report, gate) == 0 ? 0 : 1;
}
