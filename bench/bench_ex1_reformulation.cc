// E5 — Example 1: tgd-driven acyclic reformulation and its payoff.
//
// The paper's motivating example: under the compulsive-collector tgd the
// cyclic q(x,y) is equivalent to an acyclic 2-atom query. We measure who
// wins when evaluating over growing databases: backtracking join on the
// original cyclic q vs. Yannakakis on the reformulation (plus the one-off
// reformulation cost — the fpt split of Prop 24).
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "core/homomorphism.h"
#include "eval/yannakakis.h"
#include "gen/generators.h"
#include "semacyc/decider.h"

namespace semacyc {
namespace {

ConjunctiveQuery ReformulateOnce(const MusicStoreWorkload& w) {
  SemAcResult decision = DecideSemanticAcyclicity(w.q, w.sigma);
  return *decision.witness;
}

void ShapeReport(bench::JsonReport* report) {
  bench::Banner("E5 / Example 1 — acyclic reformulation under a tgd",
                "q(x,y) is cyclic yet ≡Σ an acyclic 2-atom query; acyclic "
                "evaluation is O(|q|·|D|), general CQ evaluation is not");
  bench::Table table({"customers", "records", "|D|", "answers",
                      "cyclic eval (us)", "acyclic eval (us)", "speedup"});
  for (int scale : {10, 20, 40, 80, 160}) {
    MusicStoreWorkload w =
        MakeMusicStoreWorkload(1234, scale, 2 * scale, 8, 0.3);
    ConjunctiveQuery witness = ReformulateOnce(w);
    auto time_us = [](auto&& fn) {
      auto start = std::chrono::steady_clock::now();
      fn();
      auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration_cast<std::chrono::microseconds>(stop -
                                                                   start)
          .count();
    };
    size_t answers = 0;
    long cyclic_us = time_us(
        [&] { answers = EvaluateQuery(w.q, w.database).size(); });
    size_t fast_answers = 0;
    long acyclic_us = time_us([&] {
      fast_answers = EvaluateAcyclic(witness, w.database).answers.size();
    });
    if (answers != fast_answers) {
      std::printf("!! reformulation mismatch: %zu vs %zu\n", answers,
                  fast_answers);
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  acyclic_us > 0
                      ? static_cast<double>(cyclic_us) / acyclic_us
                      : 0.0);
    table.AddRow({std::to_string(scale), std::to_string(2 * scale),
                  std::to_string(w.database.size()), std::to_string(answers),
                  std::to_string(cyclic_us), std::to_string(acyclic_us),
                  speedup});
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: both evaluators agree on every row; the acyclic\n"
      "reformulation scales linearly in |D| and wins increasingly as the\n"
      "database grows (Example 1 / Section 7's motivation).\n");
}

void BM_ReformulationDecision(benchmark::State& state) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(7, 10, 20, 4, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideSemanticAcyclicity(w.q, w.sigma).answer);
  }
}
BENCHMARK(BM_ReformulationDecision);

void BM_CyclicEvaluation(benchmark::State& state) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(
      9, static_cast<int>(state.range(0)), 2 * static_cast<int>(state.range(0)),
      8, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateQuery(w.q, w.database).size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CyclicEvaluation)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_AcyclicEvaluation(benchmark::State& state) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(
      9, static_cast<int>(state.range(0)), 2 * static_cast<int>(state.range(0)),
      8, 0.3);
  ConjunctiveQuery witness = ReformulateOnce(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAcyclic(witness, w.database).answers.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AcyclicEvaluation)->RangeMultiplier(2)->Range(8, 64)->Complexity();

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "ex1_reformulation");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
