// E1 — Figure 1: the sticky marking procedure.
//
// Reproduces the paper's Figure 1 pair of tgd sets (one sticky, one not)
// and measures the marking procedure's cost on growing chains of tgds.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/dependency.h"
#include "deps/sticky.h"

namespace semacyc {
namespace {

void ShapeReport(bench::JsonReport* report) {
  bench::Banner("E1 / Figure 1 — sticky marking",
                "the S(y,w) variant is sticky; the S(x,w) variant is not "
                "(the join variable y becomes marked)");
  struct Case {
    const char* name;
    const char* text;
  };
  const Case cases[] = {
      {"fig1-sticky", "T(x,y,z) -> S(y,w). R(x,y), P(y,z) -> T(x,y,w)."},
      {"fig1-nonsticky", "T(x,y,z) -> S(x,w). R(x,y), P(y,z) -> T(x,y,w)."},
      {"example1-tgd", "Interest(x,z), Class(y,z) -> Owns(x,y)."},
      {"example2-tgd", "P(x), P(y) -> Rclq(x,y)."},
      {"joinless", "A(x) -> B(x). E(x,y) -> E2(y,w)."},
  };
  bench::Table table({"set", "sticky?", "marked vars (per tgd)", "violator"});
  for (const Case& c : cases) {
    DependencySet sigma = MustParseDependencySet(c.text);
    StickyMarking marking = ComputeStickyMarking(sigma.tgds);
    std::string marked;
    for (size_t t = 0; t < sigma.tgds.size(); ++t) {
      marked += "{";
      bool first = true;
      for (Term v : marking.marked[t]) {
        if (!first) marked += ",";
        marked += v.ToString();
        first = false;
      }
      marked += "} ";
    }
    table.AddRow({c.name, marking.IsSticky() ? "yes" : "NO", marked,
                  marking.IsSticky()
                      ? "-"
                      : marking.violating_variable.ToString()});
  }
  table.Print();
  table.WriteTo(report, "shape");
}

/// Chain of n tgds R_i(x,y) -> R_{i+1}(y,w): sticky, marking must walk
/// the whole chain.
std::vector<Tgd> Chain(int n) {
  std::vector<Tgd> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(MustParseTgd("Rc" + std::to_string(i) + "(x,y) -> Rc" +
                               std::to_string(i + 1) + "(y,w)"));
  }
  return out;
}

void BM_StickyMarkingChain(benchmark::State& state) {
  std::vector<Tgd> tgds = Chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStickyMarking(tgds).IsSticky());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StickyMarkingChain)->RangeMultiplier(2)->Range(4, 128)->Complexity();

void BM_StickyMarkingFigure1(benchmark::State& state) {
  DependencySet sigma = MustParseDependencySet(
      "T(x,y,z) -> S(y,w). R(x,y), P(y,z) -> T(x,y,w).");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeStickyMarking(sigma.tgds).IsSticky());
  }
}
BENCHMARK(BM_StickyMarkingFigure1);

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "fig1_sticky_marking");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
