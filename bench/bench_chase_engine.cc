// E12 — chase substrate throughput + the acyclicity-preservation
// dichotomy (Props 12 and 22 vs. Examples 2/4/5).
//
// Measures the chase engine itself (atoms/second across dependency
// classes, restricted vs oblivious) and sweeps the acyclicity-preservation
// property: guarded and K2 chases keep random acyclic queries acyclic;
// the non-APC counterexamples flip them.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chase/query_chase.h"
#include "core/hypergraph.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

void ShapeReport(bench::JsonReport* report) {
  bench::Banner(
      "E12 / Props 12 & 22 — acyclicity-preserving chase dichotomy",
      "guarded and K2 chases preserve acyclicity; NR/sticky (Ex. 2) and "
      "non-K2 keys (Ex. 4/5) do not");
  bench::Table table({"class", "trials", "acyclic preserved", "flipped"});
  int guarded_keep = 0, k2_keep = 0;
  const int trials = 25;
  for (int s = 0; s < trials; ++s) {
    Generator gen(static_cast<uint64_t>(s));
    ConjunctiveQuery q = gen.RandomAcyclicQuery(6, 3, 2, "G");
    DependencySet sigma;
    sigma.tgds = gen.RandomGuardedTgds(
        {Predicate::Get("G0", 3), Predicate::Get("G1", 3)}, 3, 2);
    ChaseOptions options;
    options.max_rounds = 3;
    if (IsAcyclicChase(ChaseQuery(q, sigma, options).instance)) ++guarded_keep;
  }
  for (int s = 0; s < trials; ++s) {
    Generator gen(static_cast<uint64_t>(s) + 1000);
    ConjunctiveQuery q = gen.RandomAcyclicQuery(8, 2, 3, "K");
    DependencySet sigma;
    for (int p = 0; p < 3; ++p) {
      std::string name = "K" + std::to_string(p);
      sigma.egds.push_back(
          MustParseEgd(name + "(x,y), " + name + "(x,z) -> y = z"));
    }
    if (IsAcyclicChase(ChaseQuery(q, sigma).instance)) ++k2_keep;
  }
  table.AddRow({"guarded (Prop 12)", std::to_string(trials),
                std::to_string(guarded_keep),
                std::to_string(trials - guarded_keep)});
  table.AddRow({"K2 keys (Prop 22)", std::to_string(trials),
                std::to_string(k2_keep), std::to_string(trials - k2_keep)});
  {
    CliqueChaseWorkload ex2 = MakeCliqueChaseWorkload(5);
    bool acyclic = IsAcyclicChase(ChaseQuery(ex2.q, ex2.sigma).instance);
    table.AddRow({"NR/sticky (Ex. 2)", "1", acyclic ? "1" : "0",
                  acyclic ? "0" : "1"});
    KeySquareWorkload ex4 = MakeKeySquareWorkload();
    bool acyclic4 = IsAcyclicChase(ChaseQuery(ex4.q, ex4.sigma).instance);
    table.AddRow({"arity-3 key (Ex. 4)", "1", acyclic4 ? "1" : "0",
                  acyclic4 ? "0" : "1"});
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: 25/25 preservation for guarded and K2; guaranteed\n"
      "flips for the paper's two counterexample families.\n");
}

void BM_TransitiveClosureChase(benchmark::State& state) {
  Generator gen(3);
  Instance db = gen.RandomDatabase({Predicate::Get("E", 2)},
                                   static_cast<int>(state.range(0)), 16);
  DependencySet sigma = MustParseDependencySet("E(x,y), E(y,z) -> E(x,z)");
  for (auto _ : state) {
    ChaseResult r = ChaseTgds(db, sigma.tgds);
    benchmark::DoNotOptimize(r.instance.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TransitiveClosureChase)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();

void BM_LinearChaseRestricted(benchmark::State& state) {
  Generator gen(4);
  std::vector<Predicate> preds = {Predicate::Get("L0", 2),
                                  Predicate::Get("L1", 2),
                                  Predicate::Get("L2", 2)};
  Instance db = gen.RandomDatabase(preds, static_cast<int>(state.range(0)), 12);
  DependencySet sigma = MustParseDependencySet(
      "L0(x,y) -> L1(y,w). L1(x,y) -> L2(x,y).");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaseTgds(db, sigma.tgds).instance.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LinearChaseRestricted)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->Complexity();

void BM_ObliviousVsRestricted(benchmark::State& state) {
  Generator gen(5);
  Instance db = gen.RandomDatabase({Predicate::Get("P", 1)},
                                   static_cast<int>(state.range(0)), 64);
  DependencySet sigma = MustParseDependencySet("P(x), P(y) -> Rclq(x,y)");
  ChaseOptions options;
  options.variant = state.range(1) == 0 ? ChaseOptions::Variant::kRestricted
                                        : ChaseOptions::Variant::kOblivious;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaseTgds(db, sigma.tgds, options).instance.size());
  }
}
BENCHMARK(BM_ObliviousVsRestricted)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1});

void BM_EgdGridChase(benchmark::State& state) {
  KeyGridWorkload w = MakeKeyGridWorkload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChaseQuery(w.q, w.sigma).instance.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EgdGridChase)->DenseRange(1, 4)->Complexity();

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "chase_engine");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
