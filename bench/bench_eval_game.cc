// E11 — Theorem 25 + Prop 24: evaluating semantically acyclic CQs.
//
// Under guarded tgds, SemAcEval is solved by the existential 1-cover game
// directly on (q, D) — polynomial, no chase. We sweep |D| and compare the
// game evaluation against (a) brute-force backtracking and (b) the fpt
// reformulate-then-Yannakakis pipeline.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "core/homomorphism.h"
#include "core/parser.h"
#include "eval/semac_eval.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

struct Workload {
  ConjunctiveQuery q;
  DependencySet sigma;
  Instance database;
  std::vector<Term> domain;
};

/// q(x) over a guarded Σ that regenerates the E-triangle from T; the
/// database holds `n` T-triangles (satisfying Σ) plus noise edges.
Workload MakeWorkload(int n, uint64_t seed) {
  Workload w;
  w.q = MustParseQuery("q(x) :- T(x,y), E(y,z), E(z,x)");
  w.sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  Generator gen(seed);
  Predicate T = Predicate::Get("T", 2);
  Predicate E = Predicate::Get("E", 2);
  for (int i = 0; i < n; ++i) {
    std::string s = std::to_string(i);
    Term a = Term::Constant("a" + s), b = Term::Constant("b" + s),
         c = Term::Constant("c" + s);
    w.database.Insert(Atom(T, {a, b}));
    w.database.Insert(Atom(E, {b, c}));
    w.database.Insert(Atom(E, {c, a}));
    w.domain.push_back(a);
  }
  // Noise: E-only chains (no T), satisfying Σ vacuously.
  for (int i = 0; i < n; ++i) {
    Term u = Term::Constant("u" + std::to_string(i));
    Term v = Term::Constant("v" + std::to_string(i));
    w.database.Insert(Atom(E, {u, v}));
    w.domain.push_back(u);
  }
  return w;
}

void ShapeReport(bench::JsonReport* report) {
  bench::Banner(
      "E11 / Theorem 25 + Prop 24 — SemAcEval under guarded tgds",
      "the 1-cover game on (q, D) decides t ∈ q(D) in polynomial time "
      "(no chase); the fpt pipeline is O(|D| · f(|q|+|Σ|))");
  bench::Table table({"|D|", "tuples probed", "game = brute force?",
                      "game (us)", "brute (us)", "fpt eval (us)"});
  for (int n : {8, 16, 32, 64}) {
    Workload w = MakeWorkload(n, 5);
    auto time_us = [](auto&& fn) {
      auto start = std::chrono::steady_clock::now();
      fn();
      auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration_cast<std::chrono::microseconds>(stop -
                                                                   start)
          .count();
    };
    bool agree = true;
    long game_us = 0, brute_us = 0;
    for (Term t : w.domain) {
      bool game = false, brute = false;
      game_us += time_us([&] { game = GuardedGameEvaluate(w.q, w.database, {t}); });
      brute_us += time_us([&] { brute = EvaluatesTo(w.q, w.database, {t}); });
      if (game != brute) agree = false;
    }
    SemAcOptions options;
    long fpt_us = time_us([&] {
      FptEvalResult fpt = FptEvaluate(w.q, w.sigma, w.database, options);
      benchmark::DoNotOptimize(fpt.evaluation.answers.size());
    });
    table.AddRow({std::to_string(w.database.size()),
                  std::to_string(w.domain.size()), agree ? "yes" : "NO",
                  std::to_string(game_us), std::to_string(brute_us),
                  std::to_string(fpt_us)});
  }
  table.Print();
  table.WriteTo(report, "shape");
  std::printf(
      "Shape check: the game agrees with brute force on every probed\n"
      "tuple; the game scales polynomially in |D| (the Prop 29 fixpoint)\n"
      "and the fpt pipeline's per-database cost stays linear (Prop 24).\n");
}

void BM_GuardedGame(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GuardedGameEvaluate(w.q, w.database, {w.domain[i++ % w.domain.size()]}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GuardedGame)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_BruteForce(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluatesTo(w.q, w.database, {w.domain[i++ % w.domain.size()]}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BruteForce)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_FptPipeline(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<int>(state.range(0)), 5);
  SemAcOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FptEvaluate(w.q, w.sigma, w.database, options).evaluation.answers.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FptPipeline)->RangeMultiplier(2)->Range(8, 64)->Complexity();

}  // namespace
}  // namespace semacyc

int main(int argc, char** argv) {
  semacyc::bench::JsonReport report(argc, argv, "eval_game");
  semacyc::ShapeReport(&report);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
